// Package tensor provides the dense linear-algebra kernels that underpin the
// neural-network substrate of AGL. Matrices are row-major float64; all
// operations are written against flat slices so the hot loops vectorize well
// and allocate nothing beyond their destination.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) as a rows×cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying each row of rows; all rows must have
// equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d (%d vs %d)", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets every element of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	limit := m.Rows
	if limit > 4 {
		limit = 4
	}
	for i := 0; i < limit; i++ {
		s += fmt.Sprintf("%v;", m.Row(i))
	}
	if limit < m.Rows {
		s += "..."
	}
	return s + "]"
}

// GlorotFill fills m with Glorot/Xavier-uniform values using rng, suitable
// for fanIn×fanOut weight matrices.
func (m *Matrix) GlorotFill(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// RandFill fills m with uniform values in [-scale, scale).
func (m *Matrix) RandFill(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// matmulBlockK is the depth-panel size of the blocked kernels: MatMul
// streams b in panels of up to matmulBlockK rows so the active slab stays
// cache-resident across the destination rows a worker owns. Blocking over
// k keeps the per-element accumulation order (k ascending) identical to
// the reference kernel, so blocked and naive results are bit-identical.
const matmulBlockK = 256

// matmulGrain returns the number of destination rows per parallel task so
// each task carries enough arithmetic (~64k multiply-adds) to amortize
// scheduling. work is the per-row flop count.
func matmulGrain(work int) int {
	if work < 1 {
		work = 1
	}
	g := 65536 / work
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes dst = a @ b. dst must be a.Rows×b.Cols and distinct from
// both operands. The kernel is cache-blocked over the inner dimension and
// row-partitioned across the shared worker pool; because every destination
// row is owned by exactly one worker and accumulates in ascending-k order,
// the result is bit-identical at any parallelism setting.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	chunks, size := jobChunks(a.Rows, matmulGrain(a.Cols*b.Cols))
	if chunks <= 1 {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	dispatch(&poolJob{kind: kindMatMul, dst: dst, a: a, b: b, n: a.Rows, size: size, chunks: chunks})
}

// AXPYVec computes dst[j] += a*src[j] over len(src) elements — the
// exported row primitive shared with the sparse kernels.
func AXPYVec(dst, src []float64, a float64) { axpyRow(dst, src, a) }

// axpyRow computes dst[j] += a*src[j] with a 4-wide unroll. Distinct
// elements accumulate independently, so the unroll cannot change any
// element's rounding.
func axpyRow(dst, src []float64, a float64) {
	n := len(src)
	dst = dst[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		dst[j] += a * src[j]
		dst[j+1] += a * src[j+1]
		dst[j+2] += a * src[j+2]
		dst[j+3] += a * src[j+3]
	}
	for ; j < n; j++ {
		dst[j] += a * src[j]
	}
}

// matMulRows computes destination rows [lo, hi) of dst = a @ b with the
// inner dimension walked in cache-sized panels.
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		clear(dst.Row(i))
	}
	for kb := 0; kb < a.Cols; kb += matmulBlockK {
		kend := kb + matmulBlockK
		if kend > a.Cols {
			kend = a.Cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := kb; k < kend; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				axpyRow(drow, b.Data[k*n:(k+1)*n], av)
			}
		}
	}
}

// MatMulNew allocates and returns a @ b.
func MatMulNew(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	MatMul(dst, a, b)
	return dst
}

// MatMulATB computes dst = aᵀ @ b without materializing the transpose.
// a is m×n, b is m×p, dst must be n×p. Work is partitioned over
// destination rows (columns of a): each worker streams all of a and b but
// writes only its own slab of dst, in the reference accumulation order, so
// parallel and serial results are bit-identical.
func MatMulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATB outer dims %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	chunks, size := jobChunks(a.Cols, matmulGrain(a.Rows*b.Cols))
	if chunks <= 1 {
		matMulATBRows(dst, a, b, 0, a.Cols)
		return
	}
	dispatch(&poolJob{kind: kindMatMulATB, dst: dst, a: a, b: b, n: a.Cols, size: size, chunks: chunks})
}

// matMulATBRows computes destination rows [lo, hi) of dst = aᵀ @ b.
func matMulATBRows(dst, a, b *Matrix, lo, hi int) {
	p := b.Cols
	for r := lo; r < hi; r++ {
		clear(dst.Row(r))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k := lo; k < hi; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			axpyRow(dst.Data[k*p:(k+1)*p], brow, av)
		}
	}
}

// MatMulABT computes dst = a @ bᵀ without materializing the transpose.
// a is m×n, b is p×n, dst must be m×p. Row-partitioned over dst like
// MatMul; each element is a single ascending-k dot product, so results are
// bit-identical at any parallelism.
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	chunks, size := jobChunks(a.Rows, matmulGrain(a.Cols*b.Rows))
	if chunks <= 1 {
		matMulABTRows(dst, a, b, 0, a.Rows)
		return
	}
	dispatch(&poolJob{kind: kindMatMulABT, dst: dst, a: a, b: b, n: a.Rows, size: size, chunks: chunks})
}

// matMulABTRows computes destination rows [lo, hi) of dst = a @ bᵀ. Four
// dot products run fused per pass so each streamed row of a is reused
// fourfold; every dot still accumulates its own sum in ascending-k order,
// so results match the one-at-a-time reference bit for bit.
func matMulABTRows(dst, a, b *Matrix, lo, hi int) {
	n := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*n : (j+1)*n]
			b1 := b.Data[(j+1)*n : (j+2)*n]
			b2 := b.Data[(j+2)*n : (j+3)*n]
			b3 := b.Data[(j+3)*n : (j+4)*n]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// Transpose returns a newly allocated mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	m.TransposeInto(out)
	return out
}

// TransposeInto writes mᵀ into dst (m.Cols×m.Rows), which must not alias m.
func (m *Matrix) TransposeInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: TransposeInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*m.Rows+i] = v
		}
	}
}

// Add computes dst = a + b elementwise; dst may alias a or b.
func Add(dst, a, b *Matrix) {
	a.mustSameShape(b, "Add")
	a.mustSameShape(dst, "Add")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise; dst may alias a or b.
func Sub(dst, a, b *Matrix) {
	a.mustSameShape(b, "Sub")
	a.mustSameShape(dst, "Sub")
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
}

// Mul computes dst = a ⊙ b (Hadamard); dst may alias a or b.
func Mul(dst, a, b *Matrix) {
	a.mustSameShape(b, "Mul")
	a.mustSameShape(dst, "Mul")
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
}

// AXPY computes dst += alpha * x.
func AXPY(dst *Matrix, alpha float64, x *Matrix) {
	dst.mustSameShape(x, "AXPY")
	for i, v := range x.Data {
		dst.Data[i] += alpha * v
	}
}

// Scale multiplies every element of m by alpha in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddRowVector adds vec to every row of m in place (broadcast add).
func (m *Matrix) AddRowVector(vec []float64) {
	if len(vec) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d want %d", len(vec), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range vec {
			row[j] += v
		}
	}
}

// ColSums returns the per-column sums of m (used for bias gradients).
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto accumulates the per-column sums of m into out (len m.Cols),
// which the caller must have zeroed (or be accumulating into, as the bias
// gradients do).
func (m *Matrix) ColSumsInto(out []float64) {
	if len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto len %d want %d", len(out), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
}

// RowsSubset returns a new matrix containing the given rows of m, in order.
func (m *Matrix) RowsSubset(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	m.RowsSubsetInto(out, idx)
	return out
}

// RowsSubsetInto copies the given rows of m, in order, into dst
// (len(idx)×m.Cols).
func (m *Matrix) RowsSubsetInto(dst *Matrix, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: RowsSubsetInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// ScatterRowsAdd adds each row of src into dst at destination row idx[i].
func ScatterRowsAdd(dst, src *Matrix, idx []int) {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		panic("tensor: ScatterRowsAdd shape mismatch")
	}
	for i, r := range idx {
		drow := dst.Row(r)
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|; useful in tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	a.mustSameShape(b, "MaxAbsDiff")
	var d float64
	for i, v := range a.Data {
		if x := math.Abs(v - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}

// Equalish reports whether every element of a and b differs by at most tol.
func Equalish(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// ArgMaxRows returns, for each row, the index of its maximum element.
func (m *Matrix) ArgMaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// Concat stacks matrices vertically (they must share Cols).
func Concat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic("tensor: Concat column mismatch")
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out
}

// ConcatCols stacks matrices horizontally (they must share Rows).
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		cols += m.Cols
	}
	out := New(rows, cols)
	ConcatColsInto(out, ms...)
	return out
}

// ConcatColsInto stacks matrices horizontally into dst, which must be
// rows×Σcols.
func ConcatColsInto(dst *Matrix, ms ...*Matrix) {
	rows, cols := 0, 0
	if len(ms) > 0 {
		rows = ms[0].Rows
	}
	for _, m := range ms {
		if m.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		cols += m.Cols
	}
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: ConcatColsInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, rows, cols))
	}
	for i := 0; i < rows; i++ {
		drow := dst.Row(i)
		off := 0
		for _, m := range ms {
			copy(drow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
}

// SliceCols returns a copy of columns [lo, hi) of m.
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	m.SliceColsInto(out, lo, hi)
	return out
}

// SliceColsInto copies columns [lo, hi) of m into dst (m.Rows×(hi-lo)).
func (m *Matrix) SliceColsInto(dst *Matrix, lo, hi int) {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d", lo, hi, m.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != hi-lo {
		panic(fmt.Sprintf("tensor: SliceColsInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, m.Rows, hi-lo))
	}
	for i := 0; i < m.Rows; i++ {
		copy(dst.Row(i), m.Row(i)[lo:hi])
	}
}
