package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2)=%v want 5", m.At(1, 2))
	}
	if got := m.Row(1); got[2] != 5 {
		t.Fatalf("Row view broken: %v", got)
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if c.At(0, 0) != 99 {
		t.Fatal("Clone did not copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := FromRows([][]float64{{7, 8, 9}, {10, 11, 12}})
	got := MatMulNew(a, b)
	want := FromRows([][]float64{{27, 30, 33}, {61, 68, 75}, {95, 106, 117}})
	if !Equalish(got, want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad inner dims")
		}
	}()
	MatMulNew(New(2, 3), New(2, 3))
}

func TestMatMulATBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(5, 4), New(5, 3)
	a.RandFill(rng, 1)
	b.RandFill(rng, 1)
	got := New(4, 3)
	MatMulATB(got, a, b)
	want := MatMulNew(a.Transpose(), b)
	if !Equalish(got, want, 1e-12) {
		t.Fatalf("ATB mismatch: %v", MaxAbsDiff(got, want))
	}
}

func TestMatMulABTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(5, 4), New(6, 4)
	a.RandFill(rng, 1)
	b.RandFill(rng, 1)
	got := New(5, 6)
	MatMulABT(got, a, b)
	want := MatMulNew(a, b.Transpose())
	if !Equalish(got, want, 1e-12) {
		t.Fatalf("ABT mismatch: %v", MaxAbsDiff(got, want))
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("bad transpose: %v", tr)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	dst := New(2, 2)
	Add(dst, a, b)
	if dst.At(1, 1) != 44 {
		t.Fatalf("Add: %v", dst)
	}
	Sub(dst, b, a)
	if dst.At(0, 0) != 9 {
		t.Fatalf("Sub: %v", dst)
	}
	Mul(dst, a, b)
	if dst.At(1, 0) != 90 {
		t.Fatalf("Mul: %v", dst)
	}
	AXPY(dst, 2, a)
	if dst.At(1, 0) != 96 {
		t.Fatalf("AXPY: %v", dst)
	}
	dst.Scale(0.5)
	if dst.At(1, 0) != 48 {
		t.Fatalf("Scale: %v", dst)
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVector([]float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector: %v", m)
	}
	sums := m.ColSums()
	if sums[0] != 24 || sums[1] != 46 {
		t.Fatalf("ColSums: %v", sums)
	}
}

func TestRowsSubsetAndScatter(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	sub := m.RowsSubset([]int{2, 0})
	if sub.At(0, 0) != 3 || sub.At(1, 0) != 1 {
		t.Fatalf("RowsSubset: %v", sub)
	}
	dst := New(3, 2)
	ScatterRowsAdd(dst, sub, []int{2, 0})
	if dst.At(2, 0) != 3 || dst.At(0, 1) != 1 || dst.At(1, 0) != 0 {
		t.Fatalf("ScatterRowsAdd: %v", dst)
	}
}

func TestArgMaxRows(t *testing.T) {
	m := FromRows([][]float64{{0.1, 0.9, 0.2}, {3, 2, 1}})
	am := m.ArgMaxRows()
	if am[0] != 1 || am[1] != 0 {
		t.Fatalf("ArgMaxRows: %v", am)
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	c := Concat(a, b)
	if c.Rows != 3 || c.At(2, 1) != 6 {
		t.Fatalf("Concat: %v", c)
	}
	h := ConcatCols(a, FromRows([][]float64{{7, 8, 9}}))
	if h.Cols != 5 || h.At(0, 4) != 9 {
		t.Fatalf("ConcatCols: %v", h)
	}
	s := h.SliceCols(2, 5)
	if s.Cols != 3 || s.At(0, 0) != 7 {
		t.Fatalf("SliceCols: %v", s)
	}
}

func TestGlorotFillBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(50, 60)
	m.GlorotFill(rng)
	limit := math.Sqrt(6.0 / 110.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Glorot out of bounds: %v (limit %v)", v, limit)
		}
	}
	if m.Norm() == 0 {
		t.Fatal("Glorot produced all zeros")
	}
}

func TestNormAndDiff(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if math.Abs(m.Norm()-5) > 1e-12 {
		t.Fatalf("Norm: %v", m.Norm())
	}
	o := FromRows([][]float64{{3, 4.5}})
	if d := MaxAbsDiff(m, o); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("MaxAbsDiff: %v", d)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := New(m, k), New(k, n)
		a.RandFill(r, 2)
		b.RandFill(r, 2)
		lhs := MatMulNew(a, b).Transpose()
		rhs := MatMulNew(b.Transpose(), a.Transpose())
		return Equalish(lhs, rhs, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := New(m, k)
		b, c := New(k, n), New(k, n)
		a.RandFill(r, 1)
		b.RandFill(r, 1)
		c.RandFill(r, 1)
		bc := New(k, n)
		Add(bc, b, c)
		lhs := MatMulNew(a, bc)
		rhs := New(m, n)
		Add(rhs, MatMulNew(a, b), MatMulNew(a, c))
		return Equalish(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(1+r.Intn(8), 1+r.Intn(8))
		m.RandFill(r, 3)
		return Equalish(m, m.Transpose().Transpose(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, y := New(128, 128), New(128, 128)
	x.RandFill(rng, 1)
	y.RandFill(rng, 1)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}
