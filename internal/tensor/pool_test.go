package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	defer SetParallelism(SetParallelism(0))
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		for _, n := range []int{0, 1, 5, 97, 1024} {
			var mu sync.Mutex
			hits := make([]int, n)
			ParallelFor(n, 3, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("par=%d n=%d: index %d visited %d times", par, n, i, h)
				}
			}
		}
	}
}

func TestParallelForNested(t *testing.T) {
	defer SetParallelism(SetParallelism(0))
	SetParallelism(4)
	// Nested parallel sections must complete (inline-help fallback keeps
	// the pool deadlock-free even when tasks submit subtasks).
	var mu sync.Mutex
	total := 0
	ParallelFor(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(16, 1, func(l, h int) {
				mu.Lock()
				total += h - l
				mu.Unlock()
			})
		}
	})
	if total != 8*16 {
		t.Fatalf("nested total = %d want %d", total, 8*16)
	}
}

// TestPoolStress hammers the shared pool from many goroutines running
// real kernels while another goroutine flips the parallelism setting.
// Run with -race: it is the regression test for the pool's memory model
// (results are checked for correctness too — every kernel call must stay
// bit-identical to the serial reference regardless of contention).
func TestPoolStress(t *testing.T) {
	defer SetParallelism(SetParallelism(0))
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 64, 48)
	b := randMat(rng, 48, 32)
	want := naiveMatMul(a, b)

	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetParallelism(1 + i%8)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := New(64, 32)
			atb := New(48, 32)
			for iter := 0; iter < 200; iter++ {
				MatMul(dst, a, b)
				if dst.Data[0] != want.Data[0] || dst.Data[len(dst.Data)-1] != want.Data[len(want.Data)-1] {
					t.Error("MatMul result corrupted under contention")
					return
				}
				MatMulATB(atb, a, dst)
			}
		}()
	}
	wg.Wait()
	close(stop)
	flip.Wait()
}

func TestWorkspaceReuseAndZeroing(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Get(4, 8)
	m1.Fill(3)
	f1 := ws.Floats(16)
	f1[0] = 9
	i1 := ws.Ints(5)
	i1[4] = 7
	ws.Reset()

	m2 := ws.Get(2, 6) // smaller: must reuse m1's buffer, resliced + zeroed
	if &m2.Data[0] != &m1.Data[0] {
		t.Fatal("workspace did not recycle the matrix buffer")
	}
	if m2.Rows != 2 || m2.Cols != 6 || len(m2.Data) != 12 {
		t.Fatalf("recycled matrix has shape %dx%d len %d", m2.Rows, m2.Cols, len(m2.Data))
	}
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("recycled matrix not zeroed")
		}
	}
	f2 := ws.Floats(10)
	if &f2[0] != &f1[0] {
		t.Fatal("workspace did not recycle the float buffer")
	}
	if f2[0] != 0 {
		t.Fatal("recycled floats not zeroed")
	}
	i2 := ws.Ints(5)
	if &i2[0] != &i1[0] || i2[4] != 0 {
		t.Fatal("workspace did not recycle+zero the int buffer")
	}

	gets, misses := ws.Stats()
	if gets != 6 || misses != 3 {
		t.Fatalf("stats gets=%d misses=%d want 6/3", gets, misses)
	}

	// Requests larger than anything free must allocate fresh.
	m3 := ws.Get(100, 100)
	if len(m3.Data) != 10000 {
		t.Fatal("oversized request mis-sized")
	}
}

func TestNilWorkspaceFallsBack(t *testing.T) {
	var ws *Workspace
	m := ws.Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatal("nil workspace Get failed")
	}
	if len(ws.Floats(7)) != 7 || len(ws.Ints(2)) != 2 {
		t.Fatal("nil workspace slices failed")
	}
	ws.Reset() // must not panic
	if g, m := ws.Stats(); g != 0 || m != 0 {
		t.Fatal("nil workspace stats non-zero")
	}
}
