// Package metrics implements the evaluation metrics of the paper's Table 3:
// accuracy (Cora), micro-averaged F1 (PPI, multi-label) and ROC-AUC (UUG).
package metrics

import (
	"fmt"
	"sort"

	"agl/internal/tensor"
)

// Accuracy returns the fraction of predictions equal to labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("metrics: accuracy length mismatch %d vs %d", len(pred), len(labels)))
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// MicroF1 computes micro-averaged F1 for multi-label prediction: scores are
// thresholded at the given threshold against 0/1 targets, and precision and
// recall are pooled over every (example, label) cell.
func MicroF1(scores, targets *tensor.Matrix, threshold float64) float64 {
	if scores.Rows != targets.Rows || scores.Cols != targets.Cols {
		panic("metrics: MicroF1 shape mismatch")
	}
	var tp, fp, fn float64
	for i, s := range scores.Data {
		pred := s >= threshold
		actual := targets.Data[i] >= 0.5
		switch {
		case pred && actual:
			tp++
		case pred && !actual:
			fp++
		case !pred && actual:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}

// AUC computes the area under the ROC curve for binary labels (0/1) given
// real-valued scores, via the rank statistic with midrank tie handling.
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic("metrics: AUC length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // 1-based midrank
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var pos, sumPos float64
	for i, l := range labels {
		if l == 1 {
			pos++
			sumPos += ranks[i]
		}
	}
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg)
}
