package metrics

import (
	"math"
	"math/rand"
	"testing"

	"agl/internal/tensor"
)

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestMicroF1PerfectAndWorst(t *testing.T) {
	target := tensor.FromRows([][]float64{{1, 0}, {0, 1}})
	perfect := tensor.FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if f := MicroF1(perfect, target, 0.5); f != 1 {
		t.Fatalf("perfect F1=%v", f)
	}
	worst := tensor.FromRows([][]float64{{0.1, 0.9}, {0.8, 0.2}})
	if f := MicroF1(worst, target, 0.5); f != 0 {
		t.Fatalf("worst F1=%v", f)
	}
}

func TestMicroF1Pooled(t *testing.T) {
	// tp=1, fp=1, fn=1 -> precision=0.5, recall=0.5, F1=0.5
	target := tensor.FromRows([][]float64{{1, 1, 0}})
	scores := tensor.FromRows([][]float64{{0.9, 0.1, 0.9}})
	if f := MicroF1(scores, target, 0.5); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("pooled F1=%v", f)
	}
}

func TestAUCKnownValues(t *testing.T) {
	// Perfectly separated.
	if a := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); a != 1 {
		t.Fatalf("AUC=%v want 1", a)
	}
	// Perfectly inverted.
	if a := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); a != 0 {
		t.Fatalf("AUC=%v want 0", a)
	}
	// All scores tied -> 0.5.
	if a := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("tied AUC=%v", a)
	}
	// Degenerate single-class input.
	if a := AUC([]float64{0.1, 0.9}, []int{1, 1}); a != 0.5 {
		t.Fatalf("single-class AUC=%v", a)
	}
}

func TestAUCMatchesPairwiseDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	// Brute-force pairwise AUC with 0.5 credit for ties.
	var wins, pairs float64
	for i := 0; i < n; i++ {
		if labels[i] != 1 {
			continue
		}
		for j := 0; j < n; j++ {
			if labels[j] != 0 {
				continue
			}
			pairs++
			switch {
			case scores[i] > scores[j]:
				wins++
			case scores[i] == scores[j]:
				wins += 0.5
			}
		}
	}
	want := wins / pairs
	if got := AUC(scores, labels); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AUC=%v want %v", got, want)
	}
}

func TestRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 5000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	if a := AUC(scores, labels); a < 0.45 || a > 0.55 {
		t.Fatalf("random AUC=%v far from 0.5", a)
	}
}
