package gnn

import (
	"math/rand"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// GINLayer implements the Graph Isomorphism Network layer (Xu et al. 2019):
//
//	H' = MLP( (1+ε)·H + Σ_{u∈N⁺} w_vu·H_u )
//
// with a two-layer MLP (Dense → act → Dense → act) and a learnable ε
// (stored as a 1×1 parameter). The aggregator must hold the *raw* weighted
// adjacency — GIN's expressiveness argument depends on sum aggregation, so
// no normalization is applied.
//
// GIN is not part of the paper's evaluation; it exists to demonstrate that
// AGL's Layer contract (batch Forward/Backward + per-node InferNode) admits
// new architectures without touching GraphFlat, GraphTrainer or GraphInfer.
type GINLayer struct {
	W1, B1, W2, B2 *nn.Param
	Eps            *nn.Param
	Act            nn.ActKind

	in, out  int
	hidden   int
	h        *tensor.Matrix
	agg      *tensor.Matrix
	combined *tensor.Matrix
	act1     nn.Activation
	act2     nn.Activation
	z1       *tensor.Matrix
}

// NewGIN builds a GIN layer with an MLP of width out.
func NewGIN(name string, in, out int, act nn.ActKind, rng *rand.Rand) *GINLayer {
	return &GINLayer{
		W1:     nn.GlorotParam(name+"/W1", in, out, rng),
		B1:     nn.NewParam(name+"/b1", 1, out),
		W2:     nn.GlorotParam(name+"/W2", out, out, rng),
		B2:     nn.NewParam(name+"/b2", 1, out),
		Eps:    nn.NewParam(name+"/eps", 1, 1),
		Act:    act,
		in:     in,
		out:    out,
		hidden: out,
	}
}

// Kind implements Layer.
func (l *GINLayer) Kind() string { return "gin" }

// InDim implements Layer.
func (l *GINLayer) InDim() int { return l.in }

// OutDim implements Layer.
func (l *GINLayer) OutDim() int { return l.out }

// Params implements Layer.
func (l *GINLayer) Params() []*nn.Param {
	return []*nn.Param{l.W1, l.B1, l.W2, l.B2, l.Eps}
}

// Forward implements Layer.
func (l *GINLayer) Forward(ws *tensor.Workspace, ag *sparse.Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.h = h
	l.agg = ws.GetUninit(ag.A.NumRows, h.Cols)
	ag.Forward(l.agg, h)
	eps := l.Eps.W.Data[0]
	combined := ws.GetUninit(l.agg.Rows, l.agg.Cols)
	combined.CopyFrom(l.agg)
	tensor.AXPY(combined, 1+eps, h)
	l.combined = combined
	z1 := ws.GetUninit(combined.Rows, l.W1.W.Cols)
	tensor.MatMul(z1, combined, l.W1.W)
	z1.AddRowVector(l.B1.W.Row(0))
	l.act1 = nn.Activation{Kind: l.Act}
	a1 := l.act1.Forward(ws, z1)
	l.z1 = a1
	z2 := ws.GetUninit(a1.Rows, l.W2.W.Cols)
	tensor.MatMul(z2, a1, l.W2.W)
	z2.AddRowVector(l.B2.W.Row(0))
	l.act2 = nn.Activation{Kind: l.Act}
	return l.act2.Forward(ws, z2)
}

// Backward implements Layer.
func (l *GINLayer) Backward(ws *tensor.Workspace, ag *sparse.Aggregator, dy *tensor.Matrix) *tensor.Matrix {
	dz2 := l.act2.Backward(ws, dy)
	dw2 := ws.GetUninit(l.W2.W.Rows, l.W2.W.Cols)
	tensor.MatMulATB(dw2, l.z1, dz2)
	tensor.AXPY(l.W2.Grad, 1, dw2)
	dz2.ColSumsInto(l.B2.Grad.Row(0))
	da1 := ws.GetUninit(dz2.Rows, l.W2.W.Rows)
	tensor.MatMulABT(da1, dz2, l.W2.W)
	dz1 := l.act1.Backward(ws, da1)
	dw1 := ws.GetUninit(l.W1.W.Rows, l.W1.W.Cols)
	tensor.MatMulATB(dw1, l.combined, dz1)
	tensor.AXPY(l.W1.Grad, 1, dw1)
	dz1.ColSumsInto(l.B1.Grad.Row(0))
	// dCombined = dZ1 · W1ᵀ
	dc := ws.GetUninit(dz1.Rows, l.in)
	tensor.MatMulABT(dc, dz1, l.W1.W)
	// dε = Σ dc ⊙ h
	var deps float64
	for i, v := range dc.Data {
		deps += v * l.h.Data[i]
	}
	l.Eps.Grad.Data[0] += deps
	// dH = (1+ε)·dc + Aᵀ·dc
	eps := l.Eps.W.Data[0]
	dh := ws.GetUninit(ag.A.NumCols, l.in)
	ag.Backward(dh, dc)
	tensor.AXPY(dh, 1+eps, dc)
	return dh
}

// InferNode implements Layer: sum-aggregate weighted neighbor embeddings,
// combine with (1+ε)·self, and run the MLP.
func (l *GINLayer) InferNode(selfH []float64, _ float64, msgs []NeighborMsg) []float64 {
	eps := l.Eps.W.Data[0]
	comb := make([]float64, l.in)
	for i, v := range selfH {
		comb[i] = (1 + eps) * v
	}
	for _, m := range msgs {
		for i, v := range m.H {
			comb[i] += m.W * v
		}
	}
	z1 := vecMat(comb, l.W1.W)
	for j := range z1 {
		z1[j] += l.B1.W.Data[j]
	}
	applyActVec(l.Act, z1)
	z2 := vecMat(z1, l.W2.W)
	for j := range z2 {
		z2[j] += l.B2.W.Data[j]
	}
	applyActVec(l.Act, z2)
	return z2
}
