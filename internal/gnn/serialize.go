package gnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"agl/internal/nn"
)

// paramSpec is the serialized form of one parameter.
type paramSpec struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// layerSpec is the serialized form of one GNN layer or the head.
type layerSpec struct {
	Kind    string // "gcn", "sage", "gat", "dense"
	Name    string
	In, Out int
	Heads   int
	EdgeDim int
	Act     nn.ActKind
	Params  []paramSpec
}

// modelSpec is the on-disk form of a model.
type modelSpec struct {
	Cfg    Config
	Layers []layerSpec
	Head   layerSpec
	// Edge holds the pairwise link head's parameters (Cfg.EdgeHead != "");
	// empty for node-task models and for the parameter-free dot head.
	Edge []paramSpec
}

func paramsToSpecs(ps []*nn.Param) []paramSpec {
	out := make([]paramSpec, 0, len(ps))
	for _, p := range ps {
		out = append(out, paramSpec{
			Name: p.Name,
			Rows: p.W.Rows,
			Cols: p.W.Cols,
			Data: append([]float64(nil), p.W.Data...),
		})
	}
	return out
}

func loadSpecsInto(ps []*nn.Param, specs []paramSpec) error {
	if len(ps) != len(specs) {
		return fmt.Errorf("gnn: parameter count mismatch %d vs %d", len(ps), len(specs))
	}
	byName := make(map[string]paramSpec, len(specs))
	for _, s := range specs {
		byName[s.Name] = s
	}
	for _, p := range ps {
		s, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("gnn: missing serialized parameter %q", p.Name)
		}
		if s.Rows != p.W.Rows || s.Cols != p.W.Cols {
			return fmt.Errorf("gnn: parameter %q shape mismatch", p.Name)
		}
		copy(p.W.Data, s.Data)
	}
	return nil
}

func layerToSpec(name string, l Layer) layerSpec {
	spec := layerSpec{Kind: l.Kind(), Name: name, In: l.InDim(), Out: l.OutDim(), Params: paramsToSpecs(l.Params())}
	switch t := l.(type) {
	case *GCNLayer:
		spec.Act = t.Act
	case *SAGELayer:
		spec.Act = t.Act
	case *GATLayer:
		spec.Act = t.Act
		spec.Heads = t.Heads
		spec.EdgeDim = t.edgeDim
	case *GINLayer:
		spec.Act = t.Act
	}
	return spec
}

func layerFromSpec(s layerSpec) (Layer, error) {
	rng := rand.New(rand.NewSource(0))
	var l Layer
	switch s.Kind {
	case KindGCN:
		l = NewGCN(s.Name, s.In, s.Out, s.Act, rng)
	case KindSAGE:
		l = NewSAGE(s.Name, s.In, s.Out, s.Act, rng)
	case KindGAT:
		l = NewGAT(s.Name, s.In, s.Out, s.Heads, s.EdgeDim, s.Act, rng)
	case KindGIN:
		l = NewGIN(s.Name, s.In, s.Out, s.Act, rng)
	default:
		return nil, fmt.Errorf("gnn: unknown layer kind %q", s.Kind)
	}
	if err := loadSpecsInto(l.Params(), s.Params); err != nil {
		return nil, err
	}
	return l, nil
}

// Save serializes the model (config + all weights) to w.
func (m *Model) Save(w io.Writer) error {
	spec := modelSpec{Cfg: m.Cfg}
	for i, l := range m.Layers {
		spec.Layers = append(spec.Layers, layerToSpec(fmt.Sprintf("l%d", i), l))
	}
	spec.Head = layerSpec{
		Kind:   "dense",
		Name:   "head",
		In:     m.Head.W.W.Rows,
		Out:    m.Head.W.W.Cols,
		Params: paramsToSpecs(m.Head.Params()),
	}
	if m.Edge != nil {
		spec.Edge = paramsToSpecs(m.Edge.Params())
	}
	return gob.NewEncoder(w).Encode(&spec)
}

// Load deserializes a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var spec modelSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("gnn: decode model: %w", err)
	}
	m, err := NewModel(spec.Cfg)
	if err != nil {
		return nil, err
	}
	if len(spec.Layers) != len(m.Layers) {
		return nil, fmt.Errorf("gnn: layer count mismatch")
	}
	for i, ls := range spec.Layers {
		if err := loadSpecsInto(m.Layers[i].Params(), ls.Params); err != nil {
			return nil, err
		}
	}
	if err := loadSpecsInto(m.Head.Params(), spec.Head.Params); err != nil {
		return nil, err
	}
	if m.Edge != nil {
		if err := loadSpecsInto(m.Edge.Params(), spec.Edge); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MarshalModel serializes a model to bytes.
func MarshalModel(m *Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalModel deserializes a model from bytes.
func UnmarshalModel(b []byte) (*Model, error) {
	return Load(bytes.NewReader(b))
}

// Slice is one segment of a hierarchically segmented model (paper §3.4):
// slices 1..K hold one GNN layer each; slice K+1 holds the prediction head.
type Slice struct {
	Index int   // 1-based; K+1 is the prediction slice
	Layer Layer // nil for the prediction slice
	Head  *nn.Dense
	Cfg   Config
}

// IsPrediction reports whether this is the final (head) slice.
func (s *Slice) IsPrediction() bool { return s.Head != nil }

// Segment splits the model into K+1 slices — the paper's hierarchical
// model segmentation. Slices share no mutable state with the model (weights
// are copied) so each GraphInfer reduce round can own its slice.
func (m *Model) Segment() ([]*Slice, error) {
	var out []*Slice
	for i, l := range m.Layers {
		spec := layerToSpec(fmt.Sprintf("l%d", i), l)
		cp, err := layerFromSpec(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, &Slice{Index: i + 1, Layer: cp, Cfg: m.Cfg})
	}
	head := nn.NewDense("head", m.Head.W.W.Rows, m.Head.W.W.Cols, rand.New(rand.NewSource(0)))
	head.W.W.CopyFrom(m.Head.W.W)
	head.B.W.CopyFrom(m.Head.B.W)
	out = append(out, &Slice{Index: len(m.Layers) + 1, Head: head, Cfg: m.Cfg})
	return out, nil
}

// sliceSpec is the wire form of a Slice.
type sliceSpec struct {
	Index int
	Cfg   Config
	Layer *layerSpec
	Head  *layerSpec
}

// EncodeSlice serializes a slice so a reduce task can load exactly the
// parameters of its round.
func EncodeSlice(s *Slice) ([]byte, error) {
	spec := sliceSpec{Index: s.Index, Cfg: s.Cfg}
	if s.Layer != nil {
		ls := layerToSpec(fmt.Sprintf("l%d", s.Index-1), s.Layer)
		spec.Layer = &ls
	}
	if s.Head != nil {
		spec.Head = &layerSpec{
			Kind:   "dense",
			Name:   "head",
			In:     s.Head.W.W.Rows,
			Out:    s.Head.W.W.Cols,
			Params: paramsToSpecs(s.Head.Params()),
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&spec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSlice reverses EncodeSlice.
func DecodeSlice(b []byte) (*Slice, error) {
	var spec sliceSpec
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&spec); err != nil {
		return nil, fmt.Errorf("gnn: decode slice: %w", err)
	}
	s := &Slice{Index: spec.Index, Cfg: spec.Cfg}
	if spec.Layer != nil {
		l, err := layerFromSpec(*spec.Layer)
		if err != nil {
			return nil, err
		}
		s.Layer = l
	}
	if spec.Head != nil {
		head := nn.NewDense("head", spec.Head.In, spec.Head.Out, rand.New(rand.NewSource(0)))
		if err := loadSpecsInto(head.Params(), spec.Head.Params); err != nil {
			return nil, err
		}
		s.Head = head
	}
	return s, nil
}
