// Package gnn implements the GNN model zoo evaluated in the AGL paper —
// GCN, GraphSAGE and GAT — as fixed stacks of layers with hand-derived
// backward passes over CSR adjacency, plus the model-level machinery the
// system needs: per-layer pruned adjacency, edge-partitioned parallel
// aggregation, model (de)serialization, and hierarchical model segmentation
// into inference slices.
package gnn

import (
	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// NeighborMsg is the unit of message passing during sliced (per-node)
// inference: one in-edge neighbor's embedding plus the edge weight and, for
// normalization-dependent layers (GCN), the neighbor's degree.
type NeighborMsg struct {
	H     []float64 // neighbor embedding h^{(k-1)}(u)
	W     float64   // edge weight A_vu
	Deg   float64   // neighbor's normalization degree (GCN: weighted in-degree + 1)
	EFeat []float64 // edge features e_vu (nil when the graph has none)
}

// Layer is one GNN layer. Forward/Backward operate on whole batch
// subgraphs via an Aggregator (which encapsulates the adjacency and the
// edge-partitioned parallelism); InferNode computes a single node's output
// embedding from explicit neighbor messages, which is what a GraphInfer
// reduce round does. Forward/Backward draw every temporary from the
// per-step workspace (nil allocates), so one Reset after the optimizer
// step recycles the whole layer stack's memory.
type Layer interface {
	// Forward computes H^{(k)} from H^{(k-1)} over the given adjacency.
	Forward(ws *tensor.Workspace, ag *sparse.Aggregator, h *tensor.Matrix) *tensor.Matrix
	// Backward consumes dL/dH^{(k)} and returns dL/dH^{(k-1)}, accumulating
	// parameter gradients. Must be called after Forward with the same
	// aggregator and workspace.
	Backward(ws *tensor.Workspace, ag *sparse.Aggregator, dy *tensor.Matrix) *tensor.Matrix
	// InferNode computes this layer's output for one node: selfH is the
	// node's own input embedding, selfDeg its normalization degree, msgs its
	// in-edge neighbor messages.
	InferNode(selfH []float64, selfDeg float64, msgs []NeighborMsg) []float64
	// Params returns the layer's trainable parameters.
	Params() []*nn.Param
	// InDim and OutDim report the layer's embedding dimensions.
	InDim() int
	OutDim() int
	// Kind names the layer type ("gcn", "sage", "gat").
	Kind() string
}

// applyActVec applies an activation function to a vector in place using the
// same semantics as nn.Activation (used by InferNode paths).
func applyActVec(kind nn.ActKind, v []float64) {
	a := nn.Activation{Kind: kind}
	m := tensor.FromSlice(1, len(v), v)
	out := a.Forward(nil, m)
	copy(v, out.Data)
}

// ApplyDense computes a dense layer's output for a single row vector
// without touching the layer's forward cache, so concurrent reduce tasks
// can share one prediction slice. Used by GraphInfer's final round.
func ApplyDense(d *nn.Dense, h []float64) []float64 {
	out := make([]float64, d.W.W.Cols)
	copy(out, d.B.W.Row(0))
	for i, v := range h {
		if v == 0 {
			continue
		}
		row := d.W.W.Row(i)
		for j, w := range row {
			out[j] += v * w
		}
	}
	return out
}
