package gnn

import (
	"fmt"
	"math/rand"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// Model kinds understood by NewModel.
const (
	KindGCN  = "gcn"
	KindSAGE = "sage"
	KindGAT  = "gat"
	KindGIN  = "gin"
)

// Config describes a K-layer GNN plus its prediction head.
type Config struct {
	Kind    string     // "gcn", "sage" or "gat"
	InDim   int        // raw node feature dimension
	Hidden  int        // embedding dimension of every GNN layer
	Classes int        // output dimension of the prediction head
	Layers  int        // K, the number of GNN layers
	Heads   int        // attention heads (GAT only; default 1)
	Act     nn.ActKind // activation between layers
	Dropout float64    // drop probability during training (0 disables)
	Seed    int64      // parameter initialization seed
	// EdgeDim is the edge-feature dimensionality. When > 0, GAT layers add
	// an edge term to their attention logits (paper Eq. 1's e_vu); GCN and
	// GraphSAGE ignore edge features.
	EdgeDim int
	// EdgeHead, when set ("dot", "bilinear" or "mlp"), makes this a
	// link-prediction model: the GNN stack produces endpoint embeddings and
	// an EdgeScorer turns embedding pairs into link logits. The dense node
	// head still exists (Classes-wide) but training and serving go through
	// the pairwise head.
	EdgeHead string
}

func (c Config) withDefaults() Config {
	if c.Heads == 0 {
		c.Heads = 1
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Act == nn.ActIdentity && c.Kind != "" {
		c.Act = nn.ActReLU
	}
	return c
}

// Model is a K-layer GNN with a dense prediction head. A Model instance is
// not safe for concurrent use: layers cache forward activations. Distributed
// workers each hold their own replica and synchronize weights by name
// through the parameter server.
type Model struct {
	Cfg    Config
	Layers []Layer
	Head   *nn.Dense
	// Edge is the pairwise link head; nil unless Cfg.EdgeHead is set.
	Edge *EdgeScorer

	drops  []*nn.Dropout
	params *nn.ParamSet
	rng    *rand.Rand
}

// NewModel constructs a model from cfg with Glorot-initialized parameters.
func NewModel(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.InDim <= 0 || cfg.Hidden <= 0 || cfg.Classes <= 0 {
		return nil, fmt.Errorf("gnn: bad dims %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, rng: rng}
	for i := 0; i < cfg.Layers; i++ {
		in := cfg.Hidden
		if i == 0 {
			in = cfg.InDim
		}
		name := fmt.Sprintf("l%d", i)
		var layer Layer
		switch cfg.Kind {
		case KindGCN:
			layer = NewGCN(name, in, cfg.Hidden, cfg.Act, rng)
		case KindSAGE:
			layer = NewSAGE(name, in, cfg.Hidden, cfg.Act, rng)
		case KindGAT:
			layer = NewGAT(name, in, cfg.Hidden, cfg.Heads, cfg.EdgeDim, cfg.Act, rng)
		case KindGIN:
			layer = NewGIN(name, in, cfg.Hidden, cfg.Act, rng)
		default:
			return nil, fmt.Errorf("gnn: unknown model kind %q", cfg.Kind)
		}
		m.Layers = append(m.Layers, layer)
		m.drops = append(m.drops, nn.NewDropout(cfg.Dropout, rng))
	}
	m.Head = nn.NewDense("head", cfg.Hidden, cfg.Classes, rng)
	if cfg.EdgeHead != "" {
		edge, err := NewEdgeScorer("edge", cfg.EdgeHead, cfg.Hidden, rng)
		if err != nil {
			return nil, err
		}
		m.Edge = edge
	}
	m.rebuildParams()
	return m, nil
}

func (m *Model) rebuildParams() {
	m.params = nn.NewParamSet()
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			m.params.Add(p)
		}
	}
	for _, p := range m.Head.Params() {
		m.params.Add(p)
	}
	if m.Edge != nil {
		for _, p := range m.Edge.Params() {
			m.params.Add(p)
		}
	}
}

// Params returns the model's parameter set (shared storage, not a copy).
func (m *Model) Params() *nn.ParamSet { return m.params }

// BatchGraph is the vectorized form of a merged batch of k-hop
// neighborhoods: the three matrices of paper §3.3.1 (A_B as CSR, X_B dense;
// E_B is carried by Adj.Val for weighted graphs) plus the target rows and
// the BFS distances that drive graph pruning.
type BatchGraph struct {
	Adj     *sparse.CSR    // merged adjacency: row=destination, col=source
	X       *tensor.Matrix // node features, one row per subgraph node
	Targets []int          // row indices of the labeled target nodes
	Dist    []int          // d(V_B, u) for every row; -1 if unreachable
	// Deg optionally carries each node's global normalization degree
	// (weighted in-degree + 1) from the GraphFeature. When nil, GCN
	// normalization falls back to degrees computed within the batch
	// subgraph — correct for whole-graph batches, boundary-lossy for
	// k-hop fragments.
	Deg []float64
	// EdgeFeat optionally maps (dst row, src row) to the edge's feature
	// vector — the E_B matrix of §3.3.1 in sparse form.
	EdgeFeat map[[2]int][]float64
}

// ComputeDistances BFS-computes d(V_B, u): the minimum number of edges on a
// directed path from u into any target, traversed backwards from the
// targets along in-edges (CSR rows). Unreachable nodes get -1.
func ComputeDistances(adj *sparse.CSR, targets []int) []int {
	dist := make([]int, adj.NumRows)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(targets))
	for _, t := range targets {
		if dist[t] == -1 {
			dist[t] = 0
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cols, _ := adj.Row(v)
		for _, u := range cols {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// RunOptions toggles the paper's training-time optimization strategies.
type RunOptions struct {
	// Pruning enables per-layer adjacency pruning (paper §3.3.2): layer k
	// keeps only edges that can still influence a target.
	Pruning bool
	// Threads > 1 enables edge-partitioned parallel aggregation with that
	// many partitions.
	Threads int
	// Train enables dropout.
	Train bool
	// Workspace, when non-nil, is the per-step arena every temporary of
	// Prepare/Forward/Backward is drawn from. The caller resets it after
	// the step (and after copying out anything it wants to keep). Nil
	// falls back to plain allocation.
	Workspace *tensor.Workspace
}

// Prepared holds the per-batch, per-layer aggregation state: the normalized
// (and optionally pruned) adjacency of every layer. Preparing is part of
// the subgraph-vectorization phase and is overlapped with model compute by
// the training pipeline.
type Prepared struct {
	Aggs []*sparse.Aggregator
}

// Prepare normalizes the batch adjacency for the model kind and builds the
// per-layer aggregators. With pruning enabled, layer k's adjacency A^(k)
// keeps edge (v,u) only when d(V_B,v) ≤ K−k−1 and d(V_B,u) ≤ K−k (0-based
// k), so the final layer touches only the targets' in-edges. Normalization
// happens once on the full batch adjacency before filtering, which keeps
// pruned and unpruned outputs for target nodes bit-identical.
func (m *Model) Prepare(b *BatchGraph, opt RunOptions) *Prepared {
	ws := opt.Workspace
	var norm *sparse.CSR
	switch m.Cfg.Kind {
	case KindGCN:
		if b.Deg != nil {
			norm = sparse.SymNormalizeWithDegWS(ws, b.Adj, b.Deg)
		} else {
			norm = b.Adj.SymNormalizeWS(ws)
		}
	case KindSAGE:
		norm = b.Adj.RowNormalizeWS(ws)
	case KindGAT:
		norm = b.Adj.AddSelfLoopsWS(ws, 1)
	case KindGIN:
		norm = b.Adj // GIN sum-aggregates the raw weighted adjacency
	default:
		panic("gnn: unknown kind " + m.Cfg.Kind)
	}
	k := len(m.Layers)
	p := &Prepared{}
	// Aggregators hold only the adjacency, so without pruning every layer
	// shares one — the transpose and its partitions are built once per
	// batch instead of once per layer.
	var shared *sparse.Aggregator
	for i := 0; i < k; i++ {
		adj := norm
		if opt.Pruning {
			adj = norm.FilterByDistWS(ws, b.Dist, k-i-1, k-i)
		} else if shared != nil {
			p.Aggs = append(p.Aggs, shared)
			continue
		}
		ag := sparse.NewAggregatorWS(ws, adj, opt.Threads)
		if m.Cfg.EdgeDim > 0 && b.EdgeFeat != nil {
			// Materialize E_B aligned with this layer's (possibly pruned,
			// possibly self-looped) edge array; absent entries (self loops)
			// stay nil and read as zero vectors.
			ef := make([][]float64, adj.NNZ())
			for r := 0; r < adj.NumRows; r++ {
				lo, hi := adj.RowPtr[r], adj.RowPtr[r+1]
				for e := lo; e < hi; e++ {
					ef[e] = b.EdgeFeat[[2]int{r, adj.ColIdx[e]}]
				}
			}
			ag.EFeat = ef
		}
		if !opt.Pruning {
			shared = ag
		}
		p.Aggs = append(p.Aggs, ag)
	}
	return p
}

// ForwardState carries activations between Forward and Backward.
type ForwardState struct {
	Prep   *Prepared
	H      *tensor.Matrix // final node embeddings (all batch rows)
	Emb    *tensor.Matrix // target-row embeddings
	Logits *tensor.Matrix // head outputs for target rows
	b      *BatchGraph
	ws     *tensor.Workspace
}

// Forward runs the full model on a prepared batch and returns the state
// needed for Backward. With opt.Workspace set, every matrix in the state
// (including H, Emb and Logits) is workspace-owned and only valid until
// the workspace is reset.
func (m *Model) Forward(b *BatchGraph, prep *Prepared, opt RunOptions) *ForwardState {
	ws := opt.Workspace
	h := b.X
	for i, layer := range m.Layers {
		m.drops[i].Train = opt.Train
		h = m.drops[i].Forward(ws, h)
		h = layer.Forward(ws, prep.Aggs[i], h)
	}
	emb := ws.GetUninit(len(b.Targets), h.Cols)
	h.RowsSubsetInto(emb, b.Targets)
	logits := m.Head.Forward(ws, emb)
	return &ForwardState{Prep: prep, H: h, Emb: emb, Logits: logits, b: b, ws: ws}
}

// Backward propagates dLogits through the head and all layers, accumulating
// gradients into the model's parameters.
func (m *Model) Backward(st *ForwardState, dLogits *tensor.Matrix) {
	ws := st.ws
	dEmb := m.Head.Backward(ws, dLogits)
	dh := ws.Get(st.H.Rows, st.H.Cols)
	tensor.ScatterRowsAdd(dh, dEmb, st.b.Targets)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dh = m.Layers[i].Backward(ws, st.Prep.Aggs[i], dh)
		dh = m.drops[i].Backward(ws, dh)
	}
}

// Infer runs a forward pass with dropout disabled and returns the target
// logits. Used by evaluation.
func (m *Model) Infer(b *BatchGraph, opt RunOptions) *tensor.Matrix {
	opt.Train = false
	prep := m.Prepare(b, opt)
	return m.Forward(b, prep, opt).Logits
}

// NormDegrees returns the per-node normalization degrees a GCN slice needs
// during per-node inference: weighted in-degree + 1 (the self loop), i.e.
// the diagonal of D in D^{-1/2}(A+I)D^{-1/2}. For other kinds it returns
// in-degree + 1 as well (unused by their InferNode).
func NormDegrees(adj *sparse.CSR) []float64 {
	deg := make([]float64, adj.NumRows)
	for v := 0; v < adj.NumRows; v++ {
		_, vals := adj.Row(v)
		d := 1.0
		for _, w := range vals {
			d += w
		}
		deg[v] = d
	}
	return deg
}
