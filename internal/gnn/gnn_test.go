package gnn

import (
	"bytes"
	"math/rand"
	"testing"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// testBatch builds a small random batch graph with t target nodes.
func testBatch(rng *rand.Rand, n, feat, targets int, density float64) *BatchGraph {
	var es []sparse.Coo
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u != v && rng.Float64() < density {
				es = append(es, sparse.Coo{Row: v, Col: u, Val: 1 + rng.Float64()})
			}
		}
	}
	adj := sparse.NewCSR(n, n, es)
	x := tensor.New(n, feat)
	x.RandFill(rng, 1)
	tg := make([]int, targets)
	perm := rng.Perm(n)
	copy(tg, perm[:targets])
	return &BatchGraph{Adj: adj, X: x, Targets: tg, Dist: ComputeDistances(adj, tg)}
}

func newTestModel(t *testing.T, kind string, layers, feat, hidden, classes, heads int) *Model {
	t.Helper()
	m, err := NewModel(Config{
		Kind: kind, InDim: feat, Hidden: hidden, Classes: classes,
		Layers: layers, Heads: heads, Act: nn.ActTanh, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func trainLoss(m *Model, b *BatchGraph, labels []int, opt RunOptions) float64 {
	prep := m.Prepare(b, opt)
	st := m.Forward(b, prep, opt)
	l, _ := nn.SoftmaxCrossEntropy(st.Logits, labels)
	return l
}

func TestComputeDistances(t *testing.T) {
	// Chain 3->2->1->0 plus disconnected node 4.
	adj := sparse.NewCSR(5, 5, []sparse.Coo{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 3, Val: 1},
	})
	d := ComputeDistances(adj, []int{0})
	want := []int{0, 1, 2, 3, -1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("dist[%d]=%d want %d", i, d[i], w)
		}
	}
	// Multiple targets take the minimum.
	d2 := ComputeDistances(adj, []int{0, 2})
	if d2[3] != 1 || d2[1] != 1 || d2[2] != 0 {
		t.Fatalf("multi-target dist: %v", d2)
	}
}

func TestModelGradcheckAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := testBatch(rng, 12, 5, 3, 0.25)
	labels := []int{0, 1, 2}
	for _, kind := range []string{KindGCN, KindSAGE, KindGAT} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			heads := 1
			if kind == KindGAT {
				heads = 2
			}
			m := newTestModel(t, kind, 2, 5, 6, 3, heads)
			opt := RunOptions{Train: false}
			lossFn := func() float64 { return trainLoss(m, b, labels, opt) }

			prep := m.Prepare(b, opt)
			st := m.Forward(b, prep, opt)
			_, dLogits := nn.SoftmaxCrossEntropy(st.Logits, labels)
			m.Params().ZeroGrads()
			m.Backward(st, dLogits)

			for _, p := range m.Params().List() {
				stride := 1
				if len(p.W.Data) > 40 {
					stride = len(p.W.Data) / 40
				}
				rel, err := nn.GradCheck(p, lossFn, 1e-6, stride)
				if err != nil {
					t.Fatal(err)
				}
				if rel > 2e-4 {
					t.Fatalf("%s param %s gradcheck rel error %v", kind, p.Name, rel)
				}
			}
		})
	}
}

func TestPruningPreservesTargetLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := testBatch(rng, 30, 6, 4, 0.12)
	for _, kind := range []string{KindGCN, KindSAGE, KindGAT} {
		m := newTestModel(t, kind, 3, 6, 4, 2, 1)
		full := m.Infer(b, RunOptions{Pruning: false})
		pruned := m.Infer(b, RunOptions{Pruning: true})
		if !tensor.Equalish(full, pruned, 1e-9) {
			t.Fatalf("%s: pruning changed target logits by %v", kind, tensor.MaxAbsDiff(full, pruned))
		}
	}
}

func TestPruningReducesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := testBatch(rng, 40, 4, 2, 0.1)
	m := newTestModel(t, KindGCN, 2, 4, 4, 2, 1)
	full := m.Prepare(b, RunOptions{})
	pruned := m.Prepare(b, RunOptions{Pruning: true})
	for k := range full.Aggs {
		if pruned.Aggs[k].A.NNZ() > full.Aggs[k].A.NNZ() {
			t.Fatalf("layer %d gained edges under pruning", k)
		}
	}
	// The last layer must keep only edges into targets.
	last := pruned.Aggs[len(pruned.Aggs)-1].A
	targetSet := map[int]bool{}
	for _, v := range b.Targets {
		targetSet[v] = true
	}
	for _, e := range last.Entries() {
		if !targetSet[e.Row] {
			t.Fatalf("last layer kept edge into non-target %d", e.Row)
		}
	}
	if last.NNZ() >= full.Aggs[len(full.Aggs)-1].A.NNZ() {
		t.Fatal("pruning did not shrink last layer")
	}
}

func TestEdgePartitioningMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := testBatch(rng, 25, 5, 3, 0.15)
	for _, kind := range []string{KindGCN, KindSAGE, KindGAT} {
		m := newTestModel(t, kind, 2, 5, 4, 2, 2)
		serial := m.Infer(b, RunOptions{Threads: 1})
		parallel := m.Infer(b, RunOptions{Threads: 6})
		if !tensor.Equalish(serial, parallel, 1e-10) {
			t.Fatalf("%s: partitioned aggregation diverged by %v", kind, tensor.MaxAbsDiff(serial, parallel))
		}
	}
}

func TestParallelBackwardMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := testBatch(rng, 20, 5, 4, 0.2)
	labels := []int{0, 1, 0, 1}
	for _, kind := range []string{KindGCN, KindSAGE, KindGAT} {
		grads := map[string]*tensor.Matrix{}
		for _, threads := range []int{1, 5} {
			m := newTestModel(t, kind, 2, 5, 4, 2, 2)
			opt := RunOptions{Threads: threads}
			prep := m.Prepare(b, opt)
			st := m.Forward(b, prep, opt)
			_, dl := nn.SoftmaxCrossEntropy(st.Logits, labels)
			m.Params().ZeroGrads()
			m.Backward(st, dl)
			for _, p := range m.Params().List() {
				if threads == 1 {
					grads[p.Name] = p.Grad.Clone()
				} else if !tensor.Equalish(grads[p.Name], p.Grad, 1e-10) {
					t.Fatalf("%s %s: parallel grad differs by %v", kind, p.Name,
						tensor.MaxAbsDiff(grads[p.Name], p.Grad))
				}
			}
		}
	}
}

// runSliced performs per-node message-passing inference with the model's
// slices — exactly what GraphInfer's reduce rounds do — and returns scores
// for every node.
func runSliced(t *testing.T, m *Model, adj *sparse.CSR, x *tensor.Matrix) *tensor.Matrix {
	t.Helper()
	slices, err := m.Segment()
	if err != nil {
		t.Fatal(err)
	}
	deg := NormDegrees(adj)
	n := adj.NumRows
	h := make([][]float64, n)
	for v := 0; v < n; v++ {
		h[v] = append([]float64(nil), x.Row(v)...)
	}
	for _, s := range slices {
		if s.IsPrediction() {
			emb := tensor.FromRows(h)
			return s.Head.Forward(nil, emb)
		}
		next := make([][]float64, n)
		for v := 0; v < n; v++ {
			cols, vals := adj.Row(v)
			msgs := make([]NeighborMsg, 0, len(cols))
			for i, u := range cols {
				msgs = append(msgs, NeighborMsg{H: h[u], W: vals[i], Deg: deg[u]})
			}
			next[v] = s.Layer.InferNode(h[v], deg[v], msgs)
		}
		h = next
	}
	t.Fatal("no prediction slice")
	return nil
}

func TestSlicedInferenceMatchesBatchForward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 18
	b := testBatch(rng, n, 5, n, 0.2)
	b.Targets = make([]int, n)
	for i := range b.Targets {
		b.Targets[i] = i
	}
	b.Dist = ComputeDistances(b.Adj, b.Targets)
	for _, kind := range []string{KindGCN, KindSAGE, KindGAT} {
		heads := 1
		if kind == KindGAT {
			heads = 2
		}
		m := newTestModel(t, kind, 2, 5, 6, 3, heads)
		batch := m.Infer(b, RunOptions{})
		sliced := runSliced(t, m, b.Adj, b.X)
		if !tensor.Equalish(batch, sliced, 1e-9) {
			t.Fatalf("%s: sliced inference differs by %v", kind, tensor.MaxAbsDiff(batch, sliced))
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := testBatch(rng, 15, 5, 3, 0.2)
	for _, kind := range []string{KindGCN, KindSAGE, KindGAT} {
		m := newTestModel(t, kind, 2, 5, 4, 2, 2)
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a := m.Infer(b, RunOptions{})
		c := m2.Infer(b, RunOptions{})
		if !tensor.Equalish(a, c, 0) {
			t.Fatalf("%s: loaded model produces different logits", kind)
		}
	}
}

func TestSliceEncodeDecodeRoundTrip(t *testing.T) {
	m := newTestModel(t, KindGAT, 2, 5, 4, 2, 2)
	slices, err := m.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 3 {
		t.Fatalf("want K+1=3 slices, got %d", len(slices))
	}
	for _, s := range slices {
		bts, err := EncodeSlice(s)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := DecodeSlice(bts)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Index != s.Index || s2.IsPrediction() != s.IsPrediction() {
			t.Fatalf("slice metadata mismatch: %+v vs %+v", s2, s)
		}
		if !s.IsPrediction() {
			msgs := []NeighborMsg{{H: []float64{1, 0, 0.5, -1, 2}, W: 1, Deg: 2}}
			self := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
			if s.Index == 2 {
				self = []float64{0.1, 0.2, 0.3, 0.4}
				msgs[0].H = []float64{1, 0, 0.5, -1}
			}
			a := s.Layer.InferNode(self, 2, msgs)
			c := s2.Layer.InferNode(self, 2, msgs)
			for i := range a {
				if a[i] != c[i] {
					t.Fatalf("slice %d InferNode mismatch after round trip", s.Index)
				}
			}
		}
	}
}

func TestSegmentIsolatesWeights(t *testing.T) {
	m := newTestModel(t, KindGCN, 2, 5, 4, 2, 1)
	slices, err := m.Segment()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the model must not change the slice.
	before := slices[0].Layer.(*GCNLayer).W.W.Clone()
	m.Layers[0].(*GCNLayer).W.W.Fill(99)
	if !tensor.Equalish(before, slices[0].Layer.(*GCNLayer).W.W, 0) {
		t.Fatal("slice shares weight storage with model")
	}
}

func TestModelConfigValidation(t *testing.T) {
	if _, err := NewModel(Config{Kind: "bogus", InDim: 2, Hidden: 2, Classes: 2}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := NewModel(Config{Kind: KindGCN}); err == nil {
		t.Fatal("expected error for zero dims")
	}
}

func TestDropoutActiveOnlyInTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := testBatch(rng, 15, 5, 3, 0.2)
	m, err := NewModel(Config{
		Kind: KindGCN, InDim: 5, Hidden: 4, Classes: 2, Layers: 2,
		Act: nn.ActTanh, Dropout: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two eval passes are deterministic.
	a := m.Infer(b, RunOptions{})
	c := m.Infer(b, RunOptions{})
	if !tensor.Equalish(a, c, 0) {
		t.Fatal("eval passes nondeterministic (dropout leaked)")
	}
	// Training passes differ (dropout active).
	opt := RunOptions{Train: true}
	p1 := m.Forward(b, m.Prepare(b, opt), opt).Logits
	p2 := m.Forward(b, m.Prepare(b, opt), opt).Logits
	if tensor.Equalish(p1, p2, 1e-12) {
		t.Fatal("training passes identical; dropout inactive")
	}
}

func TestGATHeadsDivisibilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGAT("g", 4, 5, 2, 0, nn.ActReLU, rand.New(rand.NewSource(0)))
}

func TestModelLearnsTinyTask(t *testing.T) {
	// Two clusters with opposite features and intra-cluster edges: a GCN
	// should fit the labels quickly.
	rng := rand.New(rand.NewSource(9))
	n := 20
	var es []sparse.Coo
	x := tensor.New(n, 4)
	labels := make([]int, n)
	targets := make([]int, n)
	for i := 0; i < n; i++ {
		targets[i] = i
		cls := i % 2
		labels[i] = cls
		for j := 0; j < 4; j++ {
			base := -1.0
			if cls == 1 {
				base = 1.0
			}
			x.Set(i, j, base+0.3*rng.NormFloat64())
		}
		// Ring within class.
		es = append(es, sparse.Coo{Row: i, Col: (i + 2) % n, Val: 1})
		es = append(es, sparse.Coo{Row: (i + 2) % n, Col: i, Val: 1})
	}
	adj := sparse.NewCSR(n, n, es)
	b := &BatchGraph{Adj: adj, X: x, Targets: targets, Dist: ComputeDistances(adj, targets)}
	m := newTestModel(t, KindGCN, 2, 4, 8, 2, 1)
	opt := RunOptions{Train: true}
	adam := nn.NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 60; epoch++ {
		prep := m.Prepare(b, opt)
		st := m.Forward(b, prep, opt)
		var dl *tensor.Matrix
		loss, dl = nn.SoftmaxCrossEntropy(st.Logits, labels)
		m.Params().ZeroGrads()
		m.Backward(st, dl)
		adam.StepAll(m.Params())
	}
	if loss > 0.2 {
		t.Fatalf("model failed to learn: final loss %v", loss)
	}
	pred := m.Infer(b, RunOptions{}).ArgMaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct < 18 {
		t.Fatalf("accuracy %d/20 too low", correct)
	}
}
