package gnn

import (
	"bytes"
	"math/rand"
	"testing"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// edgeBatch extends testBatch with random edge features.
func edgeBatch(rng *rand.Rand, n, feat, edgeDim, targets int, density float64) *BatchGraph {
	b := testBatch(rng, n, feat, targets, density)
	b.EdgeFeat = make(map[[2]int][]float64)
	for _, e := range b.Adj.Entries() {
		ef := make([]float64, edgeDim)
		for j := range ef {
			ef[j] = rng.NormFloat64()
		}
		b.EdgeFeat[[2]int{e.Row, e.Col}] = ef
	}
	return b
}

func newEdgeGAT(t *testing.T, layers, feat, hidden, classes, heads, edgeDim int) *Model {
	t.Helper()
	m, err := NewModel(Config{
		Kind: KindGAT, InDim: feat, Hidden: hidden, Classes: classes,
		Layers: layers, Heads: heads, EdgeDim: edgeDim, Act: nn.ActTanh, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEdgeGATHasEdgeParams(t *testing.T) {
	m := newEdgeGAT(t, 2, 5, 6, 3, 2, 4)
	found := 0
	for _, p := range m.Params().List() {
		if len(p.Name) > 6 && p.Name[len(p.Name)-7:len(p.Name)-1] == "/aedge" {
			found++
			if p.W.Rows != 4 || p.W.Cols != 1 {
				t.Fatalf("aedge shape %dx%d", p.W.Rows, p.W.Cols)
			}
		}
	}
	if found != 4 { // 2 layers x 2 heads
		t.Fatalf("found %d aedge params, want 4", found)
	}
}

func TestEdgeGATGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := edgeBatch(rng, 12, 5, 3, 3, 0.25)
	labels := []int{0, 1, 2}
	m := newEdgeGAT(t, 2, 5, 6, 3, 2, 3)
	opt := RunOptions{}
	lossFn := func() float64 {
		prep := m.Prepare(b, opt)
		st := m.Forward(b, prep, opt)
		l, _ := nn.SoftmaxCrossEntropy(st.Logits, labels)
		return l
	}
	prep := m.Prepare(b, opt)
	st := m.Forward(b, prep, opt)
	_, dl := nn.SoftmaxCrossEntropy(st.Logits, labels)
	m.Params().ZeroGrads()
	m.Backward(st, dl)
	for _, p := range m.Params().List() {
		stride := 1
		if len(p.W.Data) > 40 {
			stride = len(p.W.Data) / 40
		}
		rel, err := nn.GradCheck(p, lossFn, 1e-6, stride)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 2e-4 {
			t.Fatalf("param %s gradcheck rel error %v", p.Name, rel)
		}
	}
}

func TestEdgeFeaturesChangeGATOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := edgeBatch(rng, 15, 5, 3, 3, 0.25)
	m := newEdgeGAT(t, 2, 5, 6, 2, 1, 3)
	withEdges := m.Infer(b, RunOptions{})
	// Same batch, edge features removed.
	b2 := *b
	b2.EdgeFeat = nil
	withoutEdges := m.Infer(&b2, RunOptions{})
	if tensor.Equalish(withEdges, withoutEdges, 1e-12) {
		t.Fatal("edge features had no effect on attention")
	}
}

func TestEdgeGATPruningAndPartitioningStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := edgeBatch(rng, 25, 5, 3, 4, 0.15)
	m := newEdgeGAT(t, 2, 5, 6, 2, 1, 3)
	base := m.Infer(b, RunOptions{})
	pruned := m.Infer(b, RunOptions{Pruning: true})
	if !tensor.Equalish(base, pruned, 1e-9) {
		t.Fatalf("pruning changed edge-GAT logits by %v", tensor.MaxAbsDiff(base, pruned))
	}
	parallel := m.Infer(b, RunOptions{Threads: 6})
	if !tensor.Equalish(base, parallel, 1e-10) {
		t.Fatalf("partitioning changed edge-GAT logits by %v", tensor.MaxAbsDiff(base, parallel))
	}
}

func TestEdgeGATSlicedInferenceMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 16
	b := edgeBatch(rng, n, 5, 3, n, 0.2)
	b.Targets = make([]int, n)
	for i := range b.Targets {
		b.Targets[i] = i
	}
	b.Dist = ComputeDistances(b.Adj, b.Targets)
	m := newEdgeGAT(t, 2, 5, 6, 3, 1, 3)
	batch := m.Infer(b, RunOptions{})

	// Sliced per-node inference with edge features in the messages.
	slices, err := m.Segment()
	if err != nil {
		t.Fatal(err)
	}
	deg := NormDegrees(b.Adj)
	h := make([][]float64, n)
	for v := 0; v < n; v++ {
		h[v] = append([]float64(nil), b.X.Row(v)...)
	}
	var sliced *tensor.Matrix
	for _, s := range slices {
		if s.IsPrediction() {
			sliced = s.Head.Forward(nil, tensor.FromRows(h))
			break
		}
		next := make([][]float64, n)
		for v := 0; v < n; v++ {
			cols, vals := b.Adj.Row(v)
			msgs := make([]NeighborMsg, 0, len(cols))
			for i, u := range cols {
				msgs = append(msgs, NeighborMsg{
					H: h[u], W: vals[i], Deg: deg[u],
					EFeat: b.EdgeFeat[[2]int{v, u}],
				})
			}
			next[v] = s.Layer.InferNode(h[v], deg[v], msgs)
		}
		h = next
	}
	if !tensor.Equalish(batch, sliced, 1e-9) {
		t.Fatalf("edge-GAT sliced inference differs by %v", tensor.MaxAbsDiff(batch, sliced))
	}
}

func TestEdgeGATSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := edgeBatch(rng, 12, 5, 3, 2, 0.25)
	m := newEdgeGAT(t, 2, 5, 6, 2, 1, 3)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equalish(m.Infer(b, RunOptions{}), m2.Infer(b, RunOptions{}), 0) {
		t.Fatal("edge-GAT load changed outputs")
	}
}

// Guard: non-GAT models ignore edge features entirely.
func TestEdgeFeaturesIgnoredByGCNAndSAGE(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := edgeBatch(rng, 15, 5, 3, 3, 0.25)
	for _, kind := range []string{KindGCN, KindSAGE} {
		m, err := NewModel(Config{
			Kind: kind, InDim: 5, Hidden: 6, Classes: 2, Layers: 2,
			EdgeDim: 3, Act: nn.ActTanh, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		withEdges := m.Infer(b, RunOptions{})
		b2 := *b
		b2.EdgeFeat = nil
		withoutEdges := m.Infer(&b2, RunOptions{})
		if !tensor.Equalish(withEdges, withoutEdges, 0) {
			t.Fatalf("%s consumed edge features", kind)
		}
	}
}

var _ = sparse.Coo{} // keep sparse import when helpers change
