package gnn

import (
	"bytes"
	"math/rand"
	"testing"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

func newGINModel(t *testing.T, layers, feat, hidden, classes int) *Model {
	t.Helper()
	m, err := NewModel(Config{
		Kind: KindGIN, InDim: feat, Hidden: hidden, Classes: classes,
		Layers: layers, Act: nn.ActTanh, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGINGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := testBatch(rng, 12, 5, 3, 0.25)
	labels := []int{0, 1, 2}
	m := newGINModel(t, 2, 5, 6, 3)
	opt := RunOptions{}
	lossFn := func() float64 { return trainLoss(m, b, labels, opt) }
	prep := m.Prepare(b, opt)
	st := m.Forward(b, prep, opt)
	_, dl := nn.SoftmaxCrossEntropy(st.Logits, labels)
	m.Params().ZeroGrads()
	m.Backward(st, dl)
	for _, p := range m.Params().List() {
		stride := 1
		if len(p.W.Data) > 40 {
			stride = len(p.W.Data) / 40
		}
		rel, err := nn.GradCheck(p, lossFn, 1e-6, stride)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 2e-4 {
			t.Fatalf("param %s gradcheck rel error %v", p.Name, rel)
		}
	}
}

func TestGINEpsilonLearns(t *testing.T) {
	m := newGINModel(t, 1, 4, 4, 2)
	var eps *nn.Param
	for _, p := range m.Params().List() {
		if p.Name == "l0/eps" {
			eps = p
		}
	}
	if eps == nil {
		t.Fatal("no epsilon parameter")
	}
	if eps.W.Data[0] != 0 {
		t.Fatalf("epsilon should initialize to 0, got %v", eps.W.Data[0])
	}
}

func TestGINPruningAndPartitioningExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := testBatch(rng, 30, 6, 4, 0.12)
	m := newGINModel(t, 3, 6, 4, 2)
	full := m.Infer(b, RunOptions{})
	pruned := m.Infer(b, RunOptions{Pruning: true})
	if !tensor.Equalish(full, pruned, 1e-9) {
		t.Fatalf("pruning changed GIN logits by %v", tensor.MaxAbsDiff(full, pruned))
	}
	parallel := m.Infer(b, RunOptions{Threads: 6})
	if !tensor.Equalish(full, parallel, 1e-10) {
		t.Fatalf("partitioning changed GIN logits by %v", tensor.MaxAbsDiff(full, parallel))
	}
}

func TestGINSlicedInferenceMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 16
	b := testBatch(rng, n, 5, n, 0.2)
	b.Targets = make([]int, n)
	for i := range b.Targets {
		b.Targets[i] = i
	}
	b.Dist = ComputeDistances(b.Adj, b.Targets)
	m := newGINModel(t, 2, 5, 6, 3)
	batch := m.Infer(b, RunOptions{})
	sliced := runSliced(t, m, b.Adj, b.X)
	if !tensor.Equalish(batch, sliced, 1e-9) {
		t.Fatalf("GIN sliced inference differs by %v", tensor.MaxAbsDiff(batch, sliced))
	}
}

func TestGINSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	b := testBatch(rng, 15, 5, 3, 0.2)
	m := newGINModel(t, 2, 5, 4, 2)
	// Perturb epsilon so the round trip carries a non-default value.
	m.Params().Get("l0/eps").W.Data[0] = 0.37
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Params().Get("l0/eps").W.Data[0] != 0.37 {
		t.Fatal("epsilon lost in round trip")
	}
	if !tensor.Equalish(m.Infer(b, RunOptions{}), m2.Infer(b, RunOptions{}), 0) {
		t.Fatal("GIN load changed outputs")
	}
}

func TestGINLearnsTinyTask(t *testing.T) {
	// Sum aggregation distinguishes degree patterns that mean aggregation
	// cannot: two classes with identical feature means but different
	// degrees.
	rng := rand.New(rand.NewSource(25))
	n := 24
	b := testBatch(rng, n, 4, n, 0.0) // start with no edges
	// Class = many in-edges vs few: rebuild adjacency with degree signal.
	labels := make([]int, n)
	var es []struct{ r, c int }
	for v := 0; v < n; v++ {
		labels[v] = v % 2
		deg := 1
		if labels[v] == 1 {
			deg = 6
		}
		for d := 0; d < deg; d++ {
			u := (v + 1 + d) % n
			es = append(es, struct{ r, c int }{v, u})
		}
	}
	b = rebuildBatch(b, es)
	// Targets in node order so labels align with logit rows.
	b.Targets = make([]int, n)
	for i := range b.Targets {
		b.Targets[i] = i
	}
	b.Dist = ComputeDistances(b.Adj, b.Targets)
	// Identical features for both classes.
	b.X.Fill(0.5)
	m := newGINModel(t, 1, 4, 8, 2)
	opt := RunOptions{Train: true}
	adam := nn.NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 80; epoch++ {
		prep := m.Prepare(b, opt)
		st := m.Forward(b, prep, opt)
		var dl *tensor.Matrix
		loss, dl = nn.SoftmaxCrossEntropy(st.Logits, labels)
		m.Params().ZeroGrads()
		m.Backward(st, dl)
		adam.StepAll(m.Params())
	}
	if loss > 0.1 {
		t.Fatalf("GIN failed to learn degree signal: loss %v", loss)
	}
}

// rebuildBatch replaces a batch's adjacency with the given (row, col)
// edges, keeping targets and recomputing distances.
func rebuildBatch(b *BatchGraph, es []struct{ r, c int }) *BatchGraph {
	coos := make([]sparse.Coo, 0, len(es))
	for _, e := range es {
		coos = append(coos, sparse.Coo{Row: e.r, Col: e.c, Val: 1})
	}
	adj := sparse.NewCSR(b.Adj.NumRows, b.Adj.NumCols, coos)
	return &BatchGraph{
		Adj: adj, X: b.X, Targets: b.Targets,
		Dist: ComputeDistances(adj, b.Targets),
	}
}
