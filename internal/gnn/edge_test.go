package gnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"agl/internal/nn"
	"agl/internal/tensor"
)

// scorerLoss is the gradcheck objective for the pairwise head:
// L = ½·Σ logit². dL/dlogit = logit.
func scorerLoss(s *EdgeScorer, hs, hd *tensor.Matrix) float64 {
	logits := s.Forward(nil, hs, hd)
	var l float64
	for _, v := range logits.Data {
		l += 0.5 * v * v
	}
	return l
}

func TestEdgeScorerGradcheckAllKinds(t *testing.T) {
	const pairs, dim = 6, 5
	for _, kind := range []string{EdgeHeadDot, EdgeHeadBilinear, EdgeHeadMLP} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s, err := NewEdgeScorer("edge", kind, dim, rng)
			if err != nil {
				t.Fatal(err)
			}
			hs := tensor.New(pairs, dim)
			hd := tensor.New(pairs, dim)
			hs.RandFill(rng, 1)
			hd.RandFill(rng, 1)
			lossFn := func() float64 { return scorerLoss(s, hs, hd) }

			logits := s.Forward(nil, hs, hd)
			for _, p := range s.Params() {
				p.ZeroGrad()
			}
			dhs, dhd := s.Backward(nil, logits)

			for _, p := range s.Params() {
				rel, err := nn.GradCheck(p, lossFn, 1e-6, 1)
				if err != nil {
					t.Fatal(err)
				}
				if rel > 2e-4 {
					t.Fatalf("%s param %s gradcheck rel error %v", kind, p.Name, rel)
				}
			}
			if rel, err := nn.GradCheckInput(hs, dhs, lossFn, 1e-6, 1); err != nil || rel > 2e-4 {
				t.Fatalf("%s dHs gradcheck rel error %v (err %v)", kind, rel, err)
			}
			if rel, err := nn.GradCheckInput(hd, dhd, lossFn, 1e-6, 1); err != nil || rel > 2e-4 {
				t.Fatalf("%s dHd gradcheck rel error %v (err %v)", kind, rel, err)
			}
		})
	}
}

// TestModelEdgeGradcheck backpropagates a link BCE loss through the whole
// stack (edge head + GNN layers) and checks every parameter.
func TestModelEdgeGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := testBatch(rng, 10, 4, 3, 0.3)
	src := []int{0, 2, 5}
	dst := []int{1, 3, 0}
	labels := tensor.FromSlice(3, 1, []float64{1, 0, 1})
	for _, kind := range []string{EdgeHeadDot, EdgeHeadBilinear, EdgeHeadMLP} {
		t.Run(kind, func(t *testing.T) {
			m, err := NewModel(Config{
				Kind: KindGCN, InDim: 4, Hidden: 5, Classes: 1,
				Layers: 2, Act: nn.ActTanh, Seed: 11, EdgeHead: kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := RunOptions{Train: false}
			lossFn := func() float64 {
				l, _ := nn.SigmoidBCE(m.InferEdges(b, src, dst, opt), labels)
				return l
			}
			prep := m.Prepare(b, opt)
			st := m.ForwardEdges(b, prep, src, dst, opt)
			_, dLogits := nn.SigmoidBCE(st.Logits, labels)
			m.Params().ZeroGrads()
			m.BackwardEdges(st, dLogits)
			for _, p := range m.Params().List() {
				stride := 1
				if len(p.W.Data) > 40 {
					stride = len(p.W.Data) / 40
				}
				rel, err := nn.GradCheck(p, lossFn, 1e-6, stride)
				if err != nil {
					t.Fatal(err)
				}
				if rel > 2e-4 {
					t.Fatalf("%s param %s gradcheck rel error %v", kind, p.Name, rel)
				}
			}
		})
	}
}

// TestScoreVecMatchesForward pins the stateless warm-path scorer to the
// batch forward pass.
func TestScoreVecMatchesForward(t *testing.T) {
	const pairs, dim = 4, 6
	for _, kind := range []string{EdgeHeadDot, EdgeHeadBilinear, EdgeHeadMLP} {
		rng := rand.New(rand.NewSource(5))
		s, err := NewEdgeScorer("edge", kind, dim, rng)
		if err != nil {
			t.Fatal(err)
		}
		hs := tensor.New(pairs, dim)
		hd := tensor.New(pairs, dim)
		hs.RandFill(rng, 1)
		hd.RandFill(rng, 1)
		logits := s.Forward(nil, hs, hd)
		for p := 0; p < pairs; p++ {
			got := s.ScoreVec(hs.Row(p), hd.Row(p))
			if math.Abs(got-logits.Data[p]) > 1e-12 {
				t.Fatalf("%s pair %d: ScoreVec %v vs Forward %v", kind, p, got, logits.Data[p])
			}
		}
	}
}

func TestEdgeModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := testBatch(rng, 8, 4, 2, 0.3)
	src := []int{0, 3}
	dst := []int{1, 4}
	for _, kind := range []string{EdgeHeadDot, EdgeHeadBilinear, EdgeHeadMLP} {
		m, err := NewModel(Config{
			Kind: KindSAGE, InDim: 4, Hidden: 5, Classes: 1,
			Layers: 2, Act: nn.ActTanh, Seed: 21, EdgeHead: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m2.Edge == nil || m2.Edge.Kind != kind {
			t.Fatalf("%s: loaded model lost its edge head", kind)
		}
		want := m.InferEdges(b, src, dst, RunOptions{})
		got := m2.InferEdges(b, src, dst, RunOptions{})
		if !tensor.Equalish(want, got, 1e-12) {
			t.Fatalf("%s: loaded model scores differ by %v", kind, tensor.MaxAbsDiff(want, got))
		}
	}
}

func TestNewEdgeScorerRejectsUnknownKind(t *testing.T) {
	if _, err := NewEdgeScorer("edge", "cosine", 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for unknown edge head kind")
	}
	if _, err := NewModel(Config{
		Kind: KindGCN, InDim: 3, Hidden: 4, Classes: 1, Layers: 1, EdgeHead: "cosine",
	}); err == nil {
		t.Fatal("expected NewModel to reject unknown edge head")
	}
	if !ValidEdgeHead("") || !ValidEdgeHead(EdgeHeadDot) || ValidEdgeHead("cosine") {
		t.Fatal("ValidEdgeHead enum wrong")
	}
}
