package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"agl/internal/nn"
	"agl/internal/tensor"
)

// Edge-head kinds for Config.EdgeHead — the pairwise scoring function of a
// link-prediction model, applied to the two endpoint embeddings.
const (
	// EdgeHeadDot scores a pair by the dot product of its embeddings
	// (parameter-free; the GraphSAGE / GiGL default).
	EdgeHeadDot = "dot"
	// EdgeHeadBilinear scores hs·W·hd with a learned D×D matrix (DistMult
	// generalization; breaks the dot product's symmetry for directed links).
	EdgeHeadBilinear = "bilinear"
	// EdgeHeadMLP runs a small MLP over the concatenated embeddings
	// (concat(hs,hd) → D → 1, tanh hidden).
	EdgeHeadMLP = "mlp"
)

// ValidEdgeHead reports whether kind names a known edge-head ("" is valid:
// no edge head, a node-task model).
func ValidEdgeHead(kind string) bool {
	switch kind {
	case "", EdgeHeadDot, EdgeHeadBilinear, EdgeHeadMLP:
		return true
	}
	return false
}

// EdgeScorer is the pairwise prediction head of a link-prediction model: it
// turns two endpoint embeddings into one link logit. Batch Forward/Backward
// cache activations and are not safe for concurrent use (same contract as
// the model layers); ScoreVec is stateless and safe to call concurrently —
// it is the online warm path.
type EdgeScorer struct {
	Kind string
	Dim  int

	// W is the bilinear form (EdgeHeadBilinear only).
	W *nn.Param
	// L1/L2 are the MLP layers (EdgeHeadMLP only): concat(2D) → D → 1.
	L1, L2 *nn.Dense

	// Cached forward state for Backward.
	hs, hd *tensor.Matrix
	v      *tensor.Matrix // bilinear: hd·Wᵀ
	act    *nn.Activation // mlp hidden activation
}

// NewEdgeScorer builds a pairwise head over dim-dimensional embeddings.
// name prefixes the parameter names (parameter-server keys).
func NewEdgeScorer(name, kind string, dim int, rng *rand.Rand) (*EdgeScorer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("gnn: edge scorer needs dim >= 1, got %d", dim)
	}
	s := &EdgeScorer{Kind: kind, Dim: dim}
	switch kind {
	case EdgeHeadDot:
	case EdgeHeadBilinear:
		s.W = nn.GlorotParam(name+"/W", dim, dim, rng)
	case EdgeHeadMLP:
		s.L1 = nn.NewDense(name+"/l1", 2*dim, dim, rng)
		s.L2 = nn.NewDense(name+"/l2", dim, 1, rng)
		s.act = &nn.Activation{Kind: nn.ActTanh}
	default:
		return nil, fmt.Errorf("gnn: unknown edge head %q (want %s|%s|%s)",
			kind, EdgeHeadDot, EdgeHeadBilinear, EdgeHeadMLP)
	}
	return s, nil
}

// Params returns the scorer's trainable parameters (empty for dot).
func (s *EdgeScorer) Params() []*nn.Param {
	switch s.Kind {
	case EdgeHeadBilinear:
		return []*nn.Param{s.W}
	case EdgeHeadMLP:
		return append(s.L1.Params(), s.L2.Params()...)
	}
	return nil
}

// Forward scores P pairs: hs and hd are P×D matrices of source and
// destination embeddings (row p is pair p). Returns the P×1 logit matrix
// and caches what Backward needs.
func (s *EdgeScorer) Forward(ws *tensor.Workspace, hs, hd *tensor.Matrix) *tensor.Matrix {
	s.hs, s.hd = hs, hd
	switch s.Kind {
	case EdgeHeadDot:
		out := ws.GetUninit(hs.Rows, 1)
		for p := 0; p < hs.Rows; p++ {
			out.Data[p] = dot(hs.Row(p), hd.Row(p))
		}
		return out
	case EdgeHeadBilinear:
		// v[p] = W·hd[p]; logit[p] = hs[p]·v[p].
		v := ws.GetUninit(hd.Rows, s.Dim)
		tensor.MatMulABT(v, hd, s.W.W)
		s.v = v
		out := ws.GetUninit(hs.Rows, 1)
		for p := 0; p < hs.Rows; p++ {
			out.Data[p] = dot(hs.Row(p), v.Row(p))
		}
		return out
	case EdgeHeadMLP:
		z := ws.GetUninit(hs.Rows, hs.Cols+hd.Cols)
		tensor.ConcatColsInto(z, hs, hd)
		return s.L2.Forward(ws, s.act.Forward(ws, s.L1.Forward(ws, z)))
	}
	panic("gnn: unknown edge head " + s.Kind)
}

// Backward propagates dLogits (P×1) through the scorer, accumulating
// parameter gradients and returning (dHs, dHd) for the endpoint rows.
func (s *EdgeScorer) Backward(ws *tensor.Workspace, dLogits *tensor.Matrix) (*tensor.Matrix, *tensor.Matrix) {
	switch s.Kind {
	case EdgeHeadDot:
		dhs := ws.Get(s.hs.Rows, s.Dim)
		dhd := ws.Get(s.hd.Rows, s.Dim)
		for p := 0; p < s.hs.Rows; p++ {
			g := dLogits.Data[p]
			axpyVec(dhs.Row(p), g, s.hd.Row(p))
			axpyVec(dhd.Row(p), g, s.hs.Row(p))
		}
		return dhs, dhd
	case EdgeHeadBilinear:
		// Scale source rows by the pair gradient once, then every term is a
		// plain matmul: dW += gHsᵀ·hd, dHd = gHs·W, dHs[p] = g·v[p].
		ghs := ws.Get(s.hs.Rows, s.Dim)
		dhs := ws.Get(s.hs.Rows, s.Dim)
		for p := 0; p < s.hs.Rows; p++ {
			g := dLogits.Data[p]
			axpyVec(ghs.Row(p), g, s.hs.Row(p))
			axpyVec(dhs.Row(p), g, s.v.Row(p))
		}
		dw := ws.GetUninit(s.Dim, s.Dim)
		tensor.MatMulATB(dw, ghs, s.hd)
		tensor.AXPY(s.W.Grad, 1, dw)
		dhd := ws.GetUninit(ghs.Rows, s.W.W.Cols)
		tensor.MatMul(dhd, ghs, s.W.W)
		return dhs, dhd
	case EdgeHeadMLP:
		dz := s.L1.Backward(ws, s.act.Backward(ws, s.L2.Backward(ws, dLogits)))
		dhs := ws.GetUninit(dz.Rows, s.Dim)
		dz.SliceColsInto(dhs, 0, s.Dim)
		dhd := ws.GetUninit(dz.Rows, s.Dim)
		dz.SliceColsInto(dhd, s.Dim, 2*s.Dim)
		return dhs, dhd
	}
	panic("gnn: unknown edge head " + s.Kind)
}

// ScoreVec scores one pair of embedding vectors. Unlike Forward it caches
// nothing, so concurrent callers are safe — this is the serving tier's warm
// path (two store lookups feed straight into it).
func (s *EdgeScorer) ScoreVec(hs, hd []float64) float64 {
	switch s.Kind {
	case EdgeHeadDot:
		return dot(hs, hd)
	case EdgeHeadBilinear:
		// hs·W·hd without materializing W·hd: accumulate row by row.
		var out float64
		for i, a := range hs {
			out += a * dot(s.W.W.Row(i), hd)
		}
		return out
	case EdgeHeadMLP:
		z := make([]float64, 0, 2*s.Dim)
		z = append(append(z, hs...), hd...)
		h := ApplyDense(s.L1, z)
		for i, v := range h {
			h[i] = math.Tanh(v)
		}
		return ApplyDense(s.L2, h)[0]
	}
	panic("gnn: unknown edge head " + s.Kind)
}

func axpyVec(dst []float64, alpha float64, x []float64) {
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// EdgeForwardState carries activations between ForwardEdges and
// BackwardEdges.
type EdgeForwardState struct {
	Prep   *Prepared
	H      *tensor.Matrix // final node embeddings (all batch rows)
	Hs, Hd *tensor.Matrix // endpoint embeddings, one row per pair
	Logits *tensor.Matrix // P×1 link logits
	b      *BatchGraph
	src    []int
	dst    []int
	ws     *tensor.Workspace
}

// ForwardEdges runs the GNN stack on a prepared batch and scores the
// (src[p], dst[p]) row pairs with the model's edge head. The model must
// have been built with Config.EdgeHead set.
func (m *Model) ForwardEdges(b *BatchGraph, prep *Prepared, src, dst []int, opt RunOptions) *EdgeForwardState {
	ws := opt.Workspace
	h := b.X
	for i, layer := range m.Layers {
		m.drops[i].Train = opt.Train
		h = m.drops[i].Forward(ws, h)
		h = layer.Forward(ws, prep.Aggs[i], h)
	}
	hs := ws.GetUninit(len(src), h.Cols)
	h.RowsSubsetInto(hs, src)
	hd := ws.GetUninit(len(dst), h.Cols)
	h.RowsSubsetInto(hd, dst)
	logits := m.Edge.Forward(ws, hs, hd)
	return &EdgeForwardState{Prep: prep, H: h, Hs: hs, Hd: hd, Logits: logits, b: b, src: src, dst: dst, ws: ws}
}

// BackwardEdges propagates dLogits (P×1) through the edge head and all
// layers, accumulating gradients into the model's parameters. Pairs sharing
// an endpoint row accumulate additively, as do pairs whose src and dst map
// to the same row.
func (m *Model) BackwardEdges(st *EdgeForwardState, dLogits *tensor.Matrix) {
	ws := st.ws
	dhs, dhd := m.Edge.Backward(ws, dLogits)
	dh := ws.Get(st.H.Rows, st.H.Cols)
	tensor.ScatterRowsAdd(dh, dhs, st.src)
	tensor.ScatterRowsAdd(dh, dhd, st.dst)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dh = m.Layers[i].Backward(ws, st.Prep.Aggs[i], dh)
		dh = m.drops[i].Backward(ws, dh)
	}
}

// InferEdges runs ForwardEdges with dropout disabled and returns the link
// logits. Used by evaluation.
func (m *Model) InferEdges(b *BatchGraph, src, dst []int, opt RunOptions) *tensor.Matrix {
	opt.Train = false
	prep := m.Prepare(b, opt)
	return m.ForwardEdges(b, prep, src, dst, opt).Logits
}
