package gnn

import (
	"math"
	"math/rand"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// GCNLayer implements a graph convolution layer (Kipf & Welling 2016):
//
//	H' = act( Â · H · W + b )
//
// where Â is the symmetrically normalized adjacency with self loops. The
// aggregator passed to Forward must already hold Â (the model performs the
// normalization once per batch so per-layer pruned adjacencies stay
// consistent with the unpruned computation).
type GCNLayer struct {
	W, B *nn.Param
	Act  nn.ActKind

	in, out int
	act     nn.Activation
	hAgg    *tensor.Matrix // cached Â·H
}

// NewGCN builds a GCN layer mapping in-dimensional embeddings to out.
func NewGCN(name string, in, out int, act nn.ActKind, rng *rand.Rand) *GCNLayer {
	return &GCNLayer{
		W:   nn.GlorotParam(name+"/W", in, out, rng),
		B:   nn.NewParam(name+"/b", 1, out),
		Act: act,
		in:  in,
		out: out,
	}
}

// Kind implements Layer.
func (l *GCNLayer) Kind() string { return "gcn" }

// InDim implements Layer.
func (l *GCNLayer) InDim() int { return l.in }

// OutDim implements Layer.
func (l *GCNLayer) OutDim() int { return l.out }

// Params implements Layer.
func (l *GCNLayer) Params() []*nn.Param { return []*nn.Param{l.W, l.B} }

// Forward implements Layer.
func (l *GCNLayer) Forward(ws *tensor.Workspace, ag *sparse.Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.hAgg = ws.GetUninit(ag.A.NumRows, h.Cols)
	ag.Forward(l.hAgg, h)
	z := ws.GetUninit(l.hAgg.Rows, l.W.W.Cols)
	tensor.MatMul(z, l.hAgg, l.W.W)
	z.AddRowVector(l.B.W.Row(0))
	l.act = nn.Activation{Kind: l.Act}
	return l.act.Forward(ws, z)
}

// Backward implements Layer.
func (l *GCNLayer) Backward(ws *tensor.Workspace, ag *sparse.Aggregator, dy *tensor.Matrix) *tensor.Matrix {
	dz := l.act.Backward(ws, dy)
	// dW += (Â·H)ᵀ · dZ, db += colsum(dZ)
	dw := ws.GetUninit(l.W.W.Rows, l.W.W.Cols)
	tensor.MatMulATB(dw, l.hAgg, dz)
	tensor.AXPY(l.W.Grad, 1, dw)
	dz.ColSumsInto(l.B.Grad.Row(0))
	// dH = Âᵀ · (dZ · Wᵀ)
	dhAgg := ws.GetUninit(dz.Rows, l.W.W.Rows)
	tensor.MatMulABT(dhAgg, dz, l.W.W)
	dh := ws.GetUninit(ag.A.NumCols, l.W.W.Rows)
	ag.Backward(dh, dhAgg)
	return dh
}

// InferNode implements Layer. For GCN the messages must carry the
// neighbors' normalization degrees; edge weight msg.W is the raw adjacency
// weight, and normalization Â_vu = w / (sqrt(d_v)·sqrt(d_u)) is applied
// here, matching sparse.CSR.SymNormalize.
func (l *GCNLayer) InferNode(selfH []float64, selfDeg float64, msgs []NeighborMsg) []float64 {
	acc := make([]float64, l.in)
	dv := selfDeg
	if dv <= 0 {
		dv = 1
	}
	// Self loop term: Â_vv = 1/d_v.
	for j, v := range selfH {
		acc[j] += v / dv
	}
	sdv := math.Sqrt(dv)
	for _, m := range msgs {
		du := m.Deg
		if du <= 0 {
			du = 1
		}
		coef := m.W / (sdv * math.Sqrt(du))
		for j, v := range m.H {
			acc[j] += coef * v
		}
	}
	z := make([]float64, l.out)
	for j := 0; j < l.out; j++ {
		z[j] = l.B.W.Data[j]
	}
	for i, a := range acc {
		if a == 0 {
			continue
		}
		wrow := l.W.W.Row(i)
		for j, w := range wrow {
			z[j] += a * w
		}
	}
	applyActVec(l.Act, z)
	return z
}
