package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// GATLayer implements multi-head graph attention (Veličković et al. 2017).
// For each head with projection W and attention vectors a_src, a_dst:
//
//	z_i     = W·h_i
//	e_vu    = LeakyReLU( a_dst·z_v + a_src·z_u )   for every in-edge (v←u)
//	α_v·    = softmax over v's in-edges (the adjacency must include self loops)
//	out_v   = Σ_u α_vu · z_u
//
// Head outputs are concatenated, a bias added, and the activation applied.
// Adjacency edge weights are ignored — attention replaces them.
//
// The backward pass runs in two conflict-free parallel sweeps: a
// destination-partitioned sweep (softmax backward, per-row terms) and a
// source-partitioned sweep over the transpose using Aggregator.FwdIdx to
// read forward-pass attention state.
type GATLayer struct {
	Heads      int
	WH         []*nn.Param // per-head projection, in×headDim
	ASrc, ADst []*nn.Param // per-head attention vectors, headDim×1
	// AEdge holds per-head edge-feature attention vectors (edgeDim×1),
	// present only when the layer was built with edgeDim > 0; the
	// attention logit gains a term a_edge·e_vu (paper Eq. 1).
	AEdge      []*nn.Param
	B          *nn.Param // 1×out bias over concatenated heads
	Act        nn.ActKind
	LeakySlope float64 // attention LeakyReLU slope (default 0.2)

	in, out, headDim, edgeDim int
	act                       nn.Activation
	hIn                       *tensor.Matrix
	z                         []*tensor.Matrix // per-head projections
	raw                       [][]float64      // per-head pre-LeakyReLU edge logits
	alpha                     [][]float64      // per-head attention coefficients
	draw                      [][]float64      // per-head dL/d(raw), filled in Backward
}

// NewGAT builds a GAT layer with the given number of heads; out must be
// divisible by heads. edgeDim > 0 adds an edge-feature attention term.
func NewGAT(name string, in, out, heads, edgeDim int, act nn.ActKind, rng *rand.Rand) *GATLayer {
	if heads < 1 || out%heads != 0 {
		panic(fmt.Sprintf("gnn: GAT out dim %d not divisible by %d heads", out, heads))
	}
	hd := out / heads
	l := &GATLayer{
		Heads:      heads,
		B:          nn.NewParam(name+"/b", 1, out),
		Act:        act,
		LeakySlope: 0.2,
		in:         in,
		out:        out,
		headDim:    hd,
		edgeDim:    edgeDim,
	}
	for h := 0; h < heads; h++ {
		l.WH = append(l.WH, nn.GlorotParam(fmt.Sprintf("%s/W%d", name, h), in, hd, rng))
		l.ASrc = append(l.ASrc, nn.GlorotParam(fmt.Sprintf("%s/asrc%d", name, h), hd, 1, rng))
		l.ADst = append(l.ADst, nn.GlorotParam(fmt.Sprintf("%s/adst%d", name, h), hd, 1, rng))
		if edgeDim > 0 {
			l.AEdge = append(l.AEdge, nn.GlorotParam(fmt.Sprintf("%s/aedge%d", name, h), edgeDim, 1, rng))
		}
	}
	return l
}

// EdgeDim reports the edge-feature dimensionality (0 = edge features off).
func (l *GATLayer) EdgeDim() int { return l.edgeDim }

// Kind implements Layer.
func (l *GATLayer) Kind() string { return "gat" }

// InDim implements Layer.
func (l *GATLayer) InDim() int { return l.in }

// OutDim implements Layer.
func (l *GATLayer) OutDim() int { return l.out }

// Params implements Layer.
func (l *GATLayer) Params() []*nn.Param {
	ps := []*nn.Param{l.B}
	for h := 0; h < l.Heads; h++ {
		ps = append(ps, l.WH[h], l.ASrc[h], l.ADst[h])
		if l.AEdge != nil {
			ps = append(ps, l.AEdge[h])
		}
	}
	return ps
}

// edgeScore computes a_edge·e for one head, treating nil features as zero.
func (l *GATLayer) edgeScore(head int, ef []float64) float64 {
	if l.AEdge == nil || ef == nil {
		return 0
	}
	a := l.AEdge[head].W.Data
	var s float64
	for i, v := range ef {
		if i >= len(a) {
			break
		}
		s += a[i] * v
	}
	return s
}

func (l *GATLayer) leaky(x float64) float64 {
	if x > 0 {
		return x
	}
	return l.LeakySlope * x
}

func (l *GATLayer) leakyGrad(x float64) float64 {
	if x > 0 {
		return 1
	}
	return l.LeakySlope
}

// Forward implements Layer.
func (l *GATLayer) Forward(ws *tensor.Workspace, ag *sparse.Aggregator, h *tensor.Matrix) *tensor.Matrix {
	a := ag.A
	n := a.NumRows
	nnz := a.NNZ()
	l.hIn = h
	if len(l.z) != l.Heads {
		l.z = make([]*tensor.Matrix, l.Heads)
		l.raw = make([][]float64, l.Heads)
		l.alpha = make([][]float64, l.Heads)
	}
	out := ws.Get(n, l.out)

	for hd := 0; hd < l.Heads; hd++ {
		z := ws.GetUninit(h.Rows, l.WH[hd].W.Cols)
		tensor.MatMul(z, h, l.WH[hd].W)
		l.z[hd] = z
		ssrc := matVecWS(ws, z, l.ASrc[hd].W)
		sdst := matVecWS(ws, z, l.ADst[hd].W)
		raw := ws.Floats(nnz)
		alpha := ws.Floats(nnz)
		off := hd * l.headDim
		ag.RangeEdgesParallel(func(lo, hi int) {
			for v := lo; v < hi; v++ {
				elo, ehi := a.RowPtr[v], a.RowPtr[v+1]
				if elo == ehi {
					continue
				}
				maxv := math.Inf(-1)
				for e := elo; e < ehi; e++ {
					u := a.ColIdx[e]
					r := sdst[v] + ssrc[u]
					if ag.EFeat != nil {
						r += l.edgeScore(hd, ag.EFeat[e])
					}
					raw[e] = r
					lr := l.leaky(r)
					alpha[e] = lr
					if lr > maxv {
						maxv = lr
					}
				}
				var sum float64
				for e := elo; e < ehi; e++ {
					alpha[e] = math.Exp(alpha[e] - maxv)
					sum += alpha[e]
				}
				orow := out.Row(v)[off : off+l.headDim]
				for e := elo; e < ehi; e++ {
					alpha[e] /= sum
					zu := z.Row(a.ColIdx[e])
					c := alpha[e]
					for j, zv := range zu {
						orow[j] += c * zv
					}
				}
			}
		})
		l.raw[hd] = raw
		l.alpha[hd] = alpha
	}
	out.AddRowVector(l.B.W.Row(0))
	l.act = nn.Activation{Kind: l.Act}
	return l.act.Forward(ws, out)
}

// Backward implements Layer.
func (l *GATLayer) Backward(ws *tensor.Workspace, ag *sparse.Aggregator, dy *tensor.Matrix) *tensor.Matrix {
	a, at := ag.A, ag.AT
	n := a.NumRows
	dOut := l.act.Backward(ws, dy)
	dOut.ColSumsInto(l.B.Grad.Row(0))
	dh := ws.Get(l.hIn.Rows, l.in)
	if len(l.draw) != l.Heads {
		l.draw = make([][]float64, l.Heads)
	}

	for hd := 0; hd < l.Heads; hd++ {
		z := l.z[hd]
		alpha := l.alpha[hd]
		raw := l.raw[hd]
		off := hd * l.headDim
		draw := ws.Floats(a.NNZ())
		dsdst := ws.Floats(n)
		dZ := ws.Get(n, l.headDim)

		// Sweep 1: destination-partitioned. Softmax backward per row and
		// the dsdst terms; both write only row-v state.
		ag.RangeEdgesParallel(func(lo, hi int) {
			dalpha := make([]float64, 0, 64)
			for v := lo; v < hi; v++ {
				elo, ehi := a.RowPtr[v], a.RowPtr[v+1]
				if elo == ehi {
					continue
				}
				dalpha = dalpha[:0]
				drow := dOut.Row(v)[off : off+l.headDim]
				var dot float64
				for e := elo; e < ehi; e++ {
					zu := z.Row(a.ColIdx[e])
					var da float64
					for j, g := range drow {
						da += g * zu[j]
					}
					dalpha = append(dalpha, da)
					dot += alpha[e] * da
				}
				var ds float64
				for e := elo; e < ehi; e++ {
					dl := alpha[e] * (dalpha[e-elo] - dot)
					dr := dl * l.leakyGrad(raw[e])
					draw[e] = dr
					ds += dr
				}
				dsdst[v] = ds
			}
		})

		// Sweep 2: source-partitioned over the transpose. Accumulates dZ[u]
		// and dssrc[u]; each u is owned by exactly one partition.
		dssrc := ws.Floats(n)
		ag.RangeEdgesParallelT(func(lo, hi int) {
			for u := lo; u < hi; u++ {
				elo, ehi := at.RowPtr[u], at.RowPtr[u+1]
				if elo == ehi {
					continue
				}
				zrow := dZ.Row(u)
				var dss float64
				for te := elo; te < ehi; te++ {
					v := at.ColIdx[te]
					e := ag.FwdIdx[te]
					dss += draw[e]
					c := alpha[e]
					drow := dOut.Row(v)[off : off+l.headDim]
					for j, g := range drow {
						zrow[j] += c * g
					}
				}
				dssrc[u] = dss
			}
		})

		// Edge-feature attention gradients: d a_edge += Σ_e draw[e]·e_vu.
		if l.AEdge != nil && ag.EFeat != nil {
			g := l.AEdge[hd].Grad.Data
			for e, ef := range ag.EFeat {
				if ef == nil || draw[e] == 0 {
					continue
				}
				d := draw[e]
				for i, v := range ef {
					if i >= len(g) {
						break
					}
					g[i] += d * v
				}
			}
		}

		// Score contributions to dZ and attention-vector gradients.
		asrc := l.ASrc[hd].W.Data
		adst := l.ADst[hd].W.Data
		daSrc := ws.Floats(l.headDim)
		daDst := ws.Floats(l.headDim)
		for i := 0; i < n; i++ {
			zrow := dZ.Row(i)
			zi := z.Row(i)
			if d := dsdst[i]; d != 0 {
				for j := range zrow {
					zrow[j] += d * adst[j]
					daDst[j] += d * zi[j]
				}
			}
			if d := dssrc[i]; d != 0 {
				for j := range zrow {
					zrow[j] += d * asrc[j]
					daSrc[j] += d * zi[j]
				}
			}
		}
		for j := 0; j < l.headDim; j++ {
			l.ASrc[hd].Grad.Data[j] += daSrc[j]
			l.ADst[hd].Grad.Data[j] += daDst[j]
		}

		// dW += Hᵀ·dZ ; dH += dZ·Wᵀ
		dw := ws.GetUninit(l.in, l.headDim)
		tensor.MatMulATB(dw, l.hIn, dZ)
		tensor.AXPY(l.WH[hd].Grad, 1, dw)
		dhHead := ws.GetUninit(n, l.in)
		tensor.MatMulABT(dhHead, dZ, l.WH[hd].W)
		tensor.Add(dh, dh, dhHead)
		l.draw[hd] = draw
	}
	return dh
}

// InferNode implements Layer. The node attends over its in-edge messages
// plus itself (the self loop the batch-mode adjacency carries). Graphs must
// not contain explicit self loops (the graph loader strips them), so the
// self candidate is never duplicated.
func (l *GATLayer) InferNode(selfH []float64, selfDeg float64, msgs []NeighborMsg) []float64 {
	out := make([]float64, l.out)
	copy(out, l.B.W.Row(0))
	for hd := 0; hd < l.Heads; hd++ {
		w := l.WH[hd].W
		zSelf := vecMat(selfH, w)
		asrc := l.ASrc[hd].W.Data
		adst := l.ADst[hd].W.Data
		sdst := dot(zSelf, adst)

		cands := make([][]float64, 0, len(msgs)+1)
		logits := make([]float64, 0, len(msgs)+1)
		cands = append(cands, zSelf)
		logits = append(logits, l.leaky(sdst+dot(zSelf, asrc)))
		for _, m := range msgs {
			zu := vecMat(m.H, w)
			cands = append(cands, zu)
			logits = append(logits, l.leaky(sdst+dot(zu, asrc)+l.edgeScore(hd, m.EFeat)))
		}
		maxv := math.Inf(-1)
		for _, lg := range logits {
			if lg > maxv {
				maxv = lg
			}
		}
		var sum float64
		for i := range logits {
			logits[i] = math.Exp(logits[i] - maxv)
			sum += logits[i]
		}
		off := hd * l.headDim
		for i, zc := range cands {
			c := logits[i] / sum
			for j, zv := range zc {
				out[off+j] += c * zv
			}
		}
	}
	applyActVec(l.Act, out)
	return out
}

// matVecWS computes m @ v for a column-vector parameter v (k×1), returning
// a dense []float64 of length m.Rows drawn from ws (nil allocates).
func matVecWS(ws *tensor.Workspace, m *tensor.Matrix, v *tensor.Matrix) []float64 {
	out := ws.Floats(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v.Data[j]
		}
		out[i] = s
	}
	return out
}

// vecMat computes x @ m for a row vector x, returning a []float64 of length
// m.Cols.
func vecMat(x []float64, m *tensor.Matrix) []float64 {
	out := make([]float64, m.Cols)
	for i, v := range x {
		if v == 0 {
			continue
		}
		row := m.Row(i)
		for j, w := range row {
			out[j] += v * w
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
