package gnn

import (
	"math/rand"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// SAGELayer implements GraphSAGE (Hamilton et al. 2017) with a mean
// aggregator and the "add" combination the paper notes all three compared
// systems use:
//
//	H' = act( H · W_self + mean_{u∈N⁺}(H_u) · W_neigh + b )
//
// The aggregator passed to Forward must hold the row-normalized adjacency
// (each row sums to 1), which realizes the weighted mean.
type SAGELayer struct {
	WSelf, WNeigh, B *nn.Param
	Act              nn.ActKind

	in, out int
	act     nn.Activation
	h       *tensor.Matrix // cached input
	m       *tensor.Matrix // cached mean-aggregated neighbors
}

// NewSAGE builds a GraphSAGE layer mapping in-dimensional embeddings to out.
func NewSAGE(name string, in, out int, act nn.ActKind, rng *rand.Rand) *SAGELayer {
	return &SAGELayer{
		WSelf:  nn.GlorotParam(name+"/Wself", in, out, rng),
		WNeigh: nn.GlorotParam(name+"/Wneigh", in, out, rng),
		B:      nn.NewParam(name+"/b", 1, out),
		Act:    act,
		in:     in,
		out:    out,
	}
}

// Kind implements Layer.
func (l *SAGELayer) Kind() string { return "sage" }

// InDim implements Layer.
func (l *SAGELayer) InDim() int { return l.in }

// OutDim implements Layer.
func (l *SAGELayer) OutDim() int { return l.out }

// Params implements Layer.
func (l *SAGELayer) Params() []*nn.Param { return []*nn.Param{l.WSelf, l.WNeigh, l.B} }

// Forward implements Layer.
func (l *SAGELayer) Forward(ws *tensor.Workspace, ag *sparse.Aggregator, h *tensor.Matrix) *tensor.Matrix {
	l.h = h
	l.m = ws.GetUninit(ag.A.NumRows, h.Cols)
	ag.Forward(l.m, h)
	z := ws.GetUninit(h.Rows, l.WSelf.W.Cols)
	tensor.MatMul(z, h, l.WSelf.W)
	zn := ws.GetUninit(l.m.Rows, l.WNeigh.W.Cols)
	tensor.MatMul(zn, l.m, l.WNeigh.W)
	tensor.Add(z, z, zn)
	z.AddRowVector(l.B.W.Row(0))
	l.act = nn.Activation{Kind: l.Act}
	return l.act.Forward(ws, z)
}

// Backward implements Layer.
func (l *SAGELayer) Backward(ws *tensor.Workspace, ag *sparse.Aggregator, dy *tensor.Matrix) *tensor.Matrix {
	dz := l.act.Backward(ws, dy)
	// Parameter gradients.
	dws := ws.GetUninit(l.WSelf.W.Rows, l.WSelf.W.Cols)
	tensor.MatMulATB(dws, l.h, dz)
	tensor.AXPY(l.WSelf.Grad, 1, dws)
	dwn := ws.GetUninit(l.WNeigh.W.Rows, l.WNeigh.W.Cols)
	tensor.MatMulATB(dwn, l.m, dz)
	tensor.AXPY(l.WNeigh.Grad, 1, dwn)
	dz.ColSumsInto(l.B.Grad.Row(0))
	// dH = dZ·W_selfᵀ + Aᵀ·(dZ·W_neighᵀ)
	dh := ws.GetUninit(dz.Rows, l.in)
	tensor.MatMulABT(dh, dz, l.WSelf.W)
	dm := ws.GetUninit(dz.Rows, l.in)
	tensor.MatMulABT(dm, dz, l.WNeigh.W)
	dhAgg := ws.GetUninit(ag.A.NumCols, l.in)
	ag.Backward(dhAgg, dm)
	tensor.Add(dh, dh, dhAgg)
	return dh
}

// InferNode implements Layer. Messages carry raw adjacency weights; the
// weighted mean is computed here, matching sparse.CSR.RowNormalize.
func (l *SAGELayer) InferNode(selfH []float64, selfDeg float64, msgs []NeighborMsg) []float64 {
	mean := make([]float64, l.in)
	var wsum float64
	for _, m := range msgs {
		wsum += m.W
	}
	if wsum > 0 {
		for _, m := range msgs {
			c := m.W / wsum
			for j, v := range m.H {
				mean[j] += c * v
			}
		}
	}
	z := make([]float64, l.out)
	copy(z, l.B.W.Row(0))
	for i, v := range selfH {
		if v == 0 {
			continue
		}
		wrow := l.WSelf.W.Row(i)
		for j, w := range wrow {
			z[j] += v * w
		}
	}
	for i, v := range mean {
		if v == 0 {
			continue
		}
		wrow := l.WNeigh.W.Row(i)
		for j, w := range wrow {
			z[j] += v * w
		}
	}
	applyActVec(l.Act, z)
	return z
}
