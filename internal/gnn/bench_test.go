package gnn

import (
	"math/rand"
	"testing"

	"agl/internal/nn"
	"agl/internal/sparse"
	"agl/internal/tensor"
)

// Per-layer forward/backward ablation benchmarks: the kernels whose
// relative costs drive the paper's Table 4 shape (GAT's attention math
// dominating aggregation; partitioning paying off for GCN/SAGE).

func benchBatch(b *testing.B, n int) *BatchGraph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return testBatchB(rng, n, 32, n/8, 6.0/float64(n))
}

// testBatchB mirrors the test helper without *testing.T.
func testBatchB(rng *rand.Rand, n, feat, targets int, density float64) *BatchGraph {
	var es []sparse.Coo
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u != v && rng.Float64() < density {
				es = append(es, sparse.Coo{Row: v, Col: u, Val: 1 + rng.Float64()})
			}
		}
	}
	b := &BatchGraph{Adj: sparse.NewCSR(n, n, es)}
	x := tensor.New(n, feat)
	x.RandFill(rng, 1)
	b.X = x
	perm := rng.Perm(n)
	b.Targets = append([]int(nil), perm[:targets]...)
	b.Dist = ComputeDistances(b.Adj, b.Targets)
	return b
}

func benchModel(b *testing.B, kind string, heads int) *Model {
	b.Helper()
	m, err := NewModel(Config{
		Kind: kind, InDim: 32, Hidden: 32, Classes: 2, Layers: 2,
		Heads: heads, Act: nn.ActReLU, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchForwardBackward measures one full train step — Prepare (adjacency
// normalization + aggregator build), Forward, loss, Backward — exactly as
// the trainer runs it: every temporary drawn from a per-step workspace
// that is reset between iterations.
func benchForwardBackward(b *testing.B, m *Model, bg *BatchGraph, opt RunOptions) {
	b.Helper()
	labels := make([]int, len(bg.Targets))
	for i := range labels {
		labels[i] = i % 2
	}
	ws := tensor.NewWorkspace()
	opt.Workspace = ws
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep := m.Prepare(bg, opt)
		st := m.Forward(bg, prep, opt)
		_, dl := nn.SoftmaxCrossEntropyWS(ws, st.Logits, labels)
		m.Params().ZeroGrads()
		m.Backward(st, dl)
		ws.Reset()
	}
}

func BenchmarkGCNTrainStepSerial(b *testing.B) {
	benchForwardBackward(b, benchModel(b, KindGCN, 1), benchBatch(b, 1024), RunOptions{Train: true})
}

func BenchmarkGCNTrainStepPartitioned(b *testing.B) {
	benchForwardBackward(b, benchModel(b, KindGCN, 1), benchBatch(b, 1024),
		RunOptions{Train: true, Threads: 8})
}

func BenchmarkGCNTrainStepPruned(b *testing.B) {
	benchForwardBackward(b, benchModel(b, KindGCN, 1), benchBatch(b, 1024),
		RunOptions{Train: true, Pruning: true})
}

func BenchmarkSAGETrainStepSerial(b *testing.B) {
	benchForwardBackward(b, benchModel(b, KindSAGE, 1), benchBatch(b, 1024), RunOptions{Train: true})
}

func BenchmarkGATTrainStepSerial(b *testing.B) {
	benchForwardBackward(b, benchModel(b, KindGAT, 4), benchBatch(b, 1024), RunOptions{Train: true})
}

func BenchmarkGATTrainStepPartitioned(b *testing.B) {
	benchForwardBackward(b, benchModel(b, KindGAT, 4), benchBatch(b, 1024),
		RunOptions{Train: true, Threads: 8})
}

func BenchmarkModelSegment(b *testing.B) {
	m := benchModel(b, KindGAT, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slices, err := m.Segment()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range slices {
			if _, err := EncodeSlice(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
