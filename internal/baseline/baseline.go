// Package baseline implements the in-memory, full-graph trainer AGL is
// compared against in the paper's Tables 3 and 4 — the stand-in for DGL
// and PyG standalone mode. It shares the GNN math kernels with AGL but
// keeps the whole graph resident, trains full-batch, and uses none of
// GraphTrainer's system optimizations, so measured differences isolate the
// system effects (pipeline, pruning, edge partitioning, disk-backed
// GraphFeatures) rather than numeric ones.
package baseline

import (
	"fmt"
	"time"

	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/metrics"
	"agl/internal/nn"
	"agl/internal/tensor"
)

// Config parameterizes the full-graph trainer.
type Config struct {
	Model  gnn.Config
	Epochs int
	LR     float64
	// MultiLabel selects sigmoid BCE over label vectors; otherwise softmax
	// cross-entropy over integer labels.
	MultiLabel bool
	// Threads enables edge-partitioned aggregation (kept available so the
	// baseline can also be run "optimized" for ablations; the paper's
	// baseline uses 1).
	Threads int
}

// Result is the trainer's output.
type Result struct {
	Model *gnn.Model
	// EpochTime is the mean wall time of one full-graph training epoch —
	// the quantity of paper Table 4.
	EpochTime time.Duration
	Losses    []float64
}

// Train runs full-batch training over the entire dataset graph.
func Train(ds *datagen.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	model, err := gnn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	bg, labels, labelVecs, err := FullBatch(ds, ds.Train, cfg.Model.Classes)
	if err != nil {
		return nil, err
	}
	opt := gnn.RunOptions{Train: true, Threads: cfg.Threads}
	adam := nn.NewAdam(cfg.LR)
	res := &Result{Model: model}

	var total time.Duration
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		t0 := time.Now()
		prep := model.Prepare(bg, opt)
		st := model.Forward(bg, prep, opt)
		var loss float64
		var dLogits *tensor.Matrix
		if cfg.MultiLabel {
			loss, dLogits = nn.SigmoidBCE(st.Logits, labelVecs)
		} else {
			loss, dLogits = nn.SoftmaxCrossEntropy(st.Logits, labels)
		}
		model.Params().ZeroGrads()
		model.Backward(st, dLogits)
		adam.StepAll(model.Params())
		total += time.Since(t0)
		res.Losses = append(res.Losses, loss)
	}
	res.EpochTime = total / time.Duration(cfg.Epochs)
	return res, nil
}

// FullBatch builds a whole-graph BatchGraph with the given node IDs as
// targets, plus their labels.
func FullBatch(ds *datagen.Dataset, ids []int64, classes int) (*gnn.BatchGraph, []int, *tensor.Matrix, error) {
	g := ds.G
	adj := g.CSR()
	x := tensor.New(g.NumNodes(), g.FeatureDim())
	for i, n := range g.Nodes {
		copy(x.Row(i), n.Feat)
	}
	targets := make([]int, 0, len(ids))
	labels := make([]int, 0, len(ids))
	var labelVecs *tensor.Matrix
	if ds.MultiLabel {
		labelVecs = tensor.New(len(ids), classes)
	}
	for bi, id := range ids {
		idx, ok := g.Index(id)
		if !ok {
			return nil, nil, nil, fmt.Errorf("baseline: unknown node %d", id)
		}
		targets = append(targets, idx)
		labels = append(labels, ds.Labels[idx])
		if labelVecs != nil {
			copy(labelVecs.Row(bi), ds.LabelVecs.Row(idx))
		}
	}
	bg := &gnn.BatchGraph{Adj: adj, X: x, Targets: targets, Dist: gnn.ComputeDistances(adj, targets)}
	var edgeFeat map[[2]int][]float64
	for _, e := range g.Edges {
		if len(e.Feat) == 0 {
			continue
		}
		if edgeFeat == nil {
			edgeFeat = make(map[[2]int][]float64)
		}
		edgeFeat[[2]int{g.MustIndex(e.Dst), g.MustIndex(e.Src)}] = e.Feat
	}
	bg.EdgeFeat = edgeFeat
	return bg, labels, labelVecs, nil
}

// Evaluate scores a trained model on the given split with the dataset's
// natural metric: micro-F1 for multi-label, accuracy otherwise. For binary
// single-logit models it returns AUC.
func Evaluate(model *gnn.Model, ds *datagen.Dataset, ids []int64) (float64, error) {
	bg, labels, labelVecs, err := FullBatch(ds, ids, model.Cfg.Classes)
	if err != nil {
		return 0, err
	}
	logits := model.Infer(bg, gnn.RunOptions{})
	switch {
	case ds.MultiLabel:
		return metrics.MicroF1(nn.SigmoidMatrix(logits), labelVecs, 0.5), nil
	case model.Cfg.Classes == 1:
		scores := make([]float64, logits.Rows)
		for i := range scores {
			scores[i] = nn.Sigmoid(logits.At(i, 0))
		}
		return metrics.AUC(scores, labels), nil
	default:
		return metrics.Accuracy(logits.ArgMaxRows(), labels), nil
	}
}
