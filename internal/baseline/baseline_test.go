package baseline

import (
	"testing"

	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/nn"
)

func TestFullGraphTrainerLearnsCora(t *testing.T) {
	ds, err := datagen.Cora(datagen.CoraConfig{
		Nodes: 240, Edges: 700, FeatDim: 48, Classes: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(ds, Config{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 48, Hidden: 16, Classes: 4, Layers: 2,
			Act: nn.ActReLU, Seed: 2,
		},
		Epochs: 60, LR: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatal("loss did not decrease")
	}
	acc, err := Evaluate(res.Model, ds, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("accuracy %v too low (random = 0.25)", acc)
	}
	if res.EpochTime <= 0 {
		t.Fatal("no epoch timing")
	}
}

func TestFullGraphTrainerMultiLabel(t *testing.T) {
	ds, err := datagen.PPI(datagen.PPIConfig{Scale: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(ds, Config{
		Model: gnn.Config{
			Kind: gnn.KindSAGE, InDim: 50, Hidden: 16, Classes: 121, Layers: 2,
			Act: nn.ActReLU, Seed: 4,
		},
		Epochs: 15, LR: 0.02, MultiLabel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Evaluate(res.Model, ds, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if f1 <= 0.3 {
		t.Fatalf("micro-F1 %v too low", f1)
	}
}

func TestFullGraphTrainerBinaryUUG(t *testing.T) {
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 400, FeatDim: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(ds, Config{
		Model: gnn.Config{
			Kind: gnn.KindGCN, InDim: 8, Hidden: 8, Classes: 2, Layers: 2,
			Act: nn.ActReLU, Seed: 6,
		},
		Epochs: 25, LR: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Evaluate(res.Model, ds, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.55 {
		t.Fatalf("accuracy %v too low (random = 0.5)", acc)
	}
}
