package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// hubInput builds records that all shuffle to one hub key plus a sprinkle
// of normal keys, the skew pattern AGL's re-indexing exists for.
func hubInput(hubValues, valueSize int) MemInput {
	var in MemInput
	payload := strings.Repeat("x", valueSize)
	for i := 0; i < hubValues; i++ {
		in = append(in, []byte(fmt.Sprintf("hub %s", payload)))
	}
	for i := 0; i < 50; i++ {
		in = append(in, []byte(fmt.Sprintf("cold%02d %s", i%10, payload)))
	}
	return in
}

var hubMapper = MapperFunc(func(rec []byte, emit Emit) error {
	parts := strings.SplitN(string(rec), " ", 2)
	return emit(KeyValue{Key: parts[0], Value: []byte(parts[1])})
})

// groupDigest summarizes a value stream order-sensitively, so the streamed
// and collected paths can be compared exactly.
func groupDigest(vals ...[]byte) (count int64, bytes int64, sum uint64) {
	h := fnv.New64a()
	for _, v := range vals {
		count++
		bytes += int64(len(v))
		h.Write(v)
	}
	return count, bytes, h.Sum64()
}

// TestHubKeyStreamsBoundedMemory pushes ~100k values through a single hub
// key and proves the engine never materializes the group: every value the
// iterator yields aliases one of a handful of reusable reader buffers
// (distinct backing arrays ≈ spill-reader count, not value count), and the
// reduce phase's heap stays far below the group's total size.
func TestHubKeyStreamsBoundedMemory(t *testing.T) {
	const hubValues = 100_000
	const valueSize = 200 // 20 MB hub group in total
	in := hubInput(hubValues, valueSize)

	var baseline runtime.MemStats
	backing := map[uintptr]bool{}
	var hubCount, hubBytes int64
	var heapChecked bool
	var heapDelta uint64
	reducer := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		if key != "hub" {
			_, err := CollectValues(values) // cold keys may take the easy path
			return err
		}
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			hubCount++
			hubBytes += int64(len(v))
			backing[reflect.ValueOf(v).Pointer()] = true
			if hubCount == hubValues/2 && !heapChecked {
				heapChecked = true
				runtime.GC()
				var mid runtime.MemStats
				runtime.ReadMemStats(&mid)
				if mid.HeapAlloc > baseline.HeapAlloc {
					heapDelta = mid.HeapAlloc - baseline.HeapAlloc
				}
			}
		}
		return values.Err()
	})

	runtime.GC()
	runtime.ReadMemStats(&baseline)
	stats, err := Run(Config{
		Name: "hub", TempDir: t.TempDir(), NumMappers: 4, NumReducers: 2,
		ReduceParallelism: 1,
	}, hubMapper, reducer, in, NewMemOutput())
	if err != nil {
		t.Fatal(err)
	}
	if hubCount != hubValues || hubBytes != int64(hubValues*valueSize) {
		t.Fatalf("hub group: count=%d bytes=%d", hubCount, hubBytes)
	}
	// Every value of equal size reuses a reader's buffer, so the distinct
	// backing arrays are bounded by the spill-reader (map task) count plus
	// slack for initial growth — nowhere near 100k per-value allocations.
	if len(backing) > 16 {
		t.Fatalf("engine materialized values: %d distinct backing arrays for %d values", len(backing), hubValues)
	}
	if !heapChecked {
		t.Fatal("heap checkpoint never ran")
	}
	if limit := uint64(hubValues * valueSize / 2); heapDelta > limit {
		t.Fatalf("reduce-phase heap grew %d bytes mid-group (limit %d): group is being held in memory", heapDelta, limit)
	}
	if stats.PeakGroupBytes != int64(hubValues*valueSize) {
		t.Fatalf("PeakGroupBytes=%d want %d", stats.PeakGroupBytes, hubValues*valueSize)
	}
}

// TestStreamedMatchesCollected asserts the streaming path is observationally
// identical to materializing the group: same values, same order, same
// per-key digests.
func TestStreamedMatchesCollected(t *testing.T) {
	in := hubInput(5_000, 32)
	type digest struct {
		count, bytes int64
		sum          uint64
	}
	runWith := func(reducer Reducer) map[string]digest {
		t.Helper()
		out := map[string]digest{}
		collect := NewMemOutput()
		_, err := Run(Config{Name: "eq", TempDir: t.TempDir(), NumMappers: 3, NumReducers: 3},
			hubMapper, reducer, in, collect)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range collect.Pairs() {
			var d digest
			fmt.Sscanf(string(kv.Value), "%d/%d/%d", &d.count, &d.bytes, &d.sum)
			out[kv.Key] = d
		}
		return out
	}

	streaming := runWith(ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		h := fnv.New64a()
		var count, bytes int64
		for {
			v, ok := values.Next()
			if !ok {
				break
			}
			count++
			bytes += int64(len(v))
			h.Write(v)
		}
		if err := values.Err(); err != nil {
			return err
		}
		return emit(KeyValue{Key: key, Value: []byte(fmt.Sprintf("%d/%d/%d", count, bytes, h.Sum64()))})
	}))
	collected := runWith(ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		vals, err := CollectValues(values)
		if err != nil {
			return err
		}
		count, bytes, sum := groupDigest(vals...)
		return emit(KeyValue{Key: key, Value: []byte(fmt.Sprintf("%d/%d/%d", count, bytes, sum))})
	}))

	if len(streaming) != len(collected) {
		t.Fatalf("key sets differ: %d vs %d", len(streaming), len(collected))
	}
	for k, d := range streaming {
		if collected[k] != d {
			t.Fatalf("key %s: streamed %+v collected %+v", k, d, collected[k])
		}
	}
}

// TestMaxGroupBytesFailsFastOnCollect checks the OOM guard: a reducer that
// tries to materialize a hub group larger than Config.MaxGroupBytes gets a
// clear error instead of an allocation spike.
func TestMaxGroupBytesFailsFastOnCollect(t *testing.T) {
	in := hubInput(10_000, 100) // 1 MB hub group
	reducer := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		_, err := CollectValues(values)
		return err
	})
	stats, err := Run(Config{
		Name: "guard", TempDir: t.TempDir(), MaxGroupBytes: 64 << 10,
	}, hubMapper, reducer, in, NewMemOutput())
	if !errors.Is(err, ErrGroupTooLarge) {
		t.Fatalf("err=%v want ErrGroupTooLarge", err)
	}
	// The violation is deterministic, so it must not burn retry attempts
	// re-streaming the oversized group.
	if stats.Retries != 0 {
		t.Fatalf("MaxGroupBytes violation was retried %d times", stats.Retries)
	}
	// Streaming consumption of the same oversized group is not limited.
	streamer := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		for {
			if _, ok := values.Next(); !ok {
				return values.Err()
			}
		}
	})
	if _, err := Run(Config{
		Name: "guard-stream", TempDir: t.TempDir(), MaxGroupBytes: 64 << 10,
	}, hubMapper, streamer, in, NewMemOutput()); err != nil {
		t.Fatalf("streaming over MaxGroupBytes must succeed: %v", err)
	}
}

// TestCombinerAtSpillEquivalence runs a skewed word count with and without
// the combiner: results must match exactly and the combined shuffle must be
// strictly smaller, proving pre-reduction happens before bytes hit disk.
func TestCombinerAtSpillEquivalence(t *testing.T) {
	var in MemInput
	for i := 0; i < 500; i++ {
		in = append(in, []byte(fmt.Sprintf("k%02d 1", i%7)))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		parts := strings.Fields(string(rec))
		return emit(KeyValue{Key: parts[0], Value: []byte(parts[1])})
	})
	plainOut := NewMemOutput()
	plain, err := Run(Config{Name: "plain", TempDir: t.TempDir(), NumMappers: 4},
		mapper, wcReducer, in, plainOut)
	if err != nil {
		t.Fatal(err)
	}
	combOut := NewMemOutput()
	comb, err := Run(Config{Name: "comb", TempDir: t.TempDir(), NumMappers: 4, Combiner: wcReducer},
		mapper, wcReducer, in, combOut)
	if err != nil {
		t.Fatal(err)
	}
	want, got := countsOf(plainOut.Pairs()), countsOf(combOut.Pairs())
	if len(want) != len(got) {
		t.Fatalf("key counts differ: %v vs %v", want, got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("combiner changed result for %s: %d vs %d", k, got[k], v)
		}
	}
	if comb.BytesShuffled >= plain.BytesShuffled {
		t.Fatalf("combined shuffle not smaller: %d vs %d", comb.BytesShuffled, plain.BytesShuffled)
	}
	if comb.PeakGroupBytes >= plain.PeakGroupBytes {
		t.Fatalf("combiner should shrink reduce groups: %d vs %d", comb.PeakGroupBytes, plain.PeakGroupBytes)
	}
}

// TestCombinerMustEmitOrderedKeys: a combiner that rewrites keys out of
// order corrupts the sorted-spill invariant; the engine must refuse it
// loudly rather than merge garbage.
func TestCombinerMustEmitOrderedKeys(t *testing.T) {
	rogue := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		// Two emits with descending keys — the second breaks the sorted-
		// spill invariant no matter what the group key is.
		if err := emit(KeyValue{Key: "z" + key, Value: []byte("1")}); err != nil {
			return err
		}
		return emit(KeyValue{Key: "a" + key, Value: []byte("1")})
	})
	_, err := Run(Config{
		Name: "rogue", TempDir: t.TempDir(), NumMappers: 1, MaxAttempts: 1, Combiner: rogue,
	}, wcMapper, wcReducer, wcInput(), NewMemOutput())
	if err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("err=%v want spill-order violation", err)
	}
}

// TestReduceParallelismKnob checks the reduce phase honors its own
// parallelism limit rather than inheriting NumMappers.
func TestReduceParallelismKnob(t *testing.T) {
	var live, peak int64
	reducer := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		n := atomic.AddInt64(&live, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		atomic.AddInt64(&live, -1)
		for {
			if _, ok := values.Next(); !ok {
				return values.Err()
			}
		}
	})
	var in MemInput
	for i := 0; i < 64; i++ {
		in = append(in, []byte(fmt.Sprintf("key%02d v", i)))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		return emit(KeyValue{Key: strings.Fields(string(rec))[0], Value: []byte("1")})
	})
	_, err := Run(Config{
		Name: "redpar", TempDir: t.TempDir(), NumMappers: 1,
		NumReducers: 8, ReduceParallelism: 2,
	}, mapper, reducer, in, NewMemOutput())
	if err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Fatalf("reduce concurrency %d exceeded ReduceParallelism=2", peak)
	}
	if peak < 2 {
		t.Logf("observed reduce concurrency %d (timing-dependent, limit still enforced)", peak)
	}
}

// TestEmptyReduceGroupNeverHappens documents the invariant that reducers
// are only invoked for keys with at least one value, streaming included.
func TestEmptyReduceGroupNeverHappens(t *testing.T) {
	reducer := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		if _, ok := values.Next(); !ok {
			t.Errorf("key %s delivered an empty group", key)
		}
		for {
			if _, ok := values.Next(); !ok {
				return values.Err()
			}
		}
	})
	if _, err := Run(Config{Name: "nonempty", TempDir: t.TempDir()},
		wcMapper, reducer, wcInput(), NewMemOutput()); err != nil {
		t.Fatal(err)
	}
}
