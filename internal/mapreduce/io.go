package mapreduce

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"agl/internal/dfs"
)

// RecordIter streams the records of one input split.
type RecordIter func(yield func(rec []byte) error) error

// Input provides the job's records partitioned into map splits.
type Input interface {
	Splits(n int) ([]RecordIter, error)
}

// MemInput serves in-memory records, chunked into n splits.
type MemInput [][]byte

// Splits implements Input.
func (m MemInput) Splits(n int) ([]RecordIter, error) {
	if n < 1 {
		n = 1
	}
	if len(m) == 0 {
		return []RecordIter{func(func([]byte) error) error { return nil }}, nil
	}
	if n > len(m) {
		n = len(m)
	}
	chunk := (len(m) + n - 1) / n
	var out []RecordIter
	for lo := 0; lo < len(m); lo += chunk {
		hi := lo + chunk
		if hi > len(m) {
			hi = len(m)
		}
		part := m[lo:hi]
		out = append(out, func(yield func([]byte) error) error {
			for _, rec := range part {
				if err := yield(rec); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return out, nil
}

// DFSInput serves the records of a dfs dataset; each part file is a split
// (merging small parts when there are more parts than requested splits).
type DFSInput struct{ Dir *dfs.Dir }

// Splits implements Input.
func (d DFSInput) Splits(n int) ([]RecordIter, error) {
	parts, err := d.Dir.Parts()
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return []RecordIter{func(func([]byte) error) error { return nil }}, nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(parts) {
		n = len(parts)
	}
	groups := make([][]string, n)
	for i, p := range parts {
		groups[i%n] = append(groups[i%n], p)
	}
	var out []RecordIter
	for _, g := range groups {
		g := g
		out = append(out, func(yield func([]byte) error) error {
			for _, path := range g {
				r, err := dfs.OpenPart(path)
				if err != nil {
					return err
				}
				for {
					rec, err := r.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						r.Close()
						return err
					}
					if err := yield(rec); err != nil {
						r.Close()
						return err
					}
				}
				if err := r.Close(); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return out, nil
}

// PartOutput receives one reduce task's emitted pairs. Write order within a
// task is preserved; Commit publishes atomically, Abort discards.
type PartOutput interface {
	Write(kv KeyValue) error
	Commit() error
	Abort() error
}

// Output creates per-reduce-task writers.
type Output interface {
	PartWriter(part int) (PartOutput, error)
}

// MemOutput collects reduce output in memory, grouped by part.
type MemOutput struct {
	mu    sync.Mutex
	parts map[int][]KeyValue
}

// NewMemOutput builds an empty in-memory output.
func NewMemOutput() *MemOutput { return &MemOutput{parts: make(map[int][]KeyValue)} }

type memPartWriter struct {
	out  *MemOutput
	part int
	buf  []KeyValue
}

// PartWriter implements Output.
func (m *MemOutput) PartWriter(part int) (PartOutput, error) {
	return &memPartWriter{out: m, part: part}, nil
}

func (w *memPartWriter) Write(kv KeyValue) error {
	w.buf = append(w.buf, kv)
	return nil
}

func (w *memPartWriter) Commit() error {
	w.out.mu.Lock()
	defer w.out.mu.Unlock()
	w.out.parts[w.part] = w.buf
	return nil
}

func (w *memPartWriter) Abort() error {
	w.buf = nil
	return nil
}

// Pairs returns all collected pairs in part order.
func (m *MemOutput) Pairs() []KeyValue {
	m.mu.Lock()
	defer m.mu.Unlock()
	var parts []int
	for p := range m.parts {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var out []KeyValue
	for _, p := range parts {
		out = append(out, m.parts[p]...)
	}
	return out
}

// DFSOutput writes each reduce task's pairs, framed with EncodeKV, to a dfs
// part file.
type DFSOutput struct{ Dir *dfs.Dir }

type dfsPartWriter struct{ w *dfs.PartWriter }

// PartWriter implements Output.
func (d DFSOutput) PartWriter(part int) (PartOutput, error) {
	w, err := d.Dir.Writer(part)
	if err != nil {
		return nil, err
	}
	return &dfsPartWriter{w: w}, nil
}

func (w *dfsPartWriter) Write(kv KeyValue) error { return w.w.Append(EncodeKV(kv)) }
func (w *dfsPartWriter) Commit() error           { return w.w.Close() }
func (w *dfsPartWriter) Abort() error            { return w.w.Abort() }

// EncodeKV frames a KeyValue as one record: varint keylen, key, value.
func EncodeKV(kv KeyValue) []byte {
	buf := make([]byte, 0, len(kv.Key)+len(kv.Value)+4)
	buf = binary.AppendUvarint(buf, uint64(len(kv.Key)))
	buf = append(buf, kv.Key...)
	buf = append(buf, kv.Value...)
	return buf
}

// DecodeKV reverses EncodeKV. The returned value aliases rec.
func DecodeKV(rec []byte) (KeyValue, error) {
	klen, n := binary.Uvarint(rec)
	if n <= 0 || int(klen)+n > len(rec) {
		return KeyValue{}, fmt.Errorf("mapreduce: malformed kv record")
	}
	return KeyValue{
		Key:   string(rec[n : n+int(klen)]),
		Value: rec[n+int(klen):],
	}, nil
}

// ---- spill files ----

// writeSpill writes sorted pairs to path, returning the byte count.
func writeSpill(path string, kvs []KeyValue) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var total int64
	var lenBuf [binary.MaxVarintLen64]byte
	for _, kv := range kvs {
		n := binary.PutUvarint(lenBuf[:], uint64(len(kv.Key)))
		bw.Write(lenBuf[:n])
		bw.WriteString(kv.Key)
		n2 := binary.PutUvarint(lenBuf[:], uint64(len(kv.Value)))
		bw.Write(lenBuf[:n2])
		bw.Write(kv.Value)
		total += int64(n + len(kv.Key) + n2 + len(kv.Value))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return total, f.Close()
}

// spillReader streams one sorted spill file.
type spillReader struct {
	f    *os.File
	br   *bufio.Reader
	cur  KeyValue
	done bool
}

func openSpill(path string) (*spillReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &spillReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
	if err := r.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *spillReader) advance() error {
	klen, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		r.done = true
		return nil
	}
	if err != nil {
		return err
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r.br, key); err != nil {
		return err
	}
	vlen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return err
	}
	val := make([]byte, vlen)
	if _, err := io.ReadFull(r.br, val); err != nil {
		return err
	}
	r.cur = KeyValue{Key: string(key), Value: val}
	return nil
}

func (r *spillReader) close() { r.f.Close() }

// merger performs a k-way merge over sorted spills and yields key groups.
type merger struct {
	readers []*spillReader
}

func mergeSpills(files []string) (*merger, error) {
	m := &merger{}
	for _, f := range files {
		r, err := openSpill(f)
		if err != nil {
			for _, rr := range m.readers {
				rr.close()
			}
			return nil, err
		}
		m.readers = append(m.readers, r)
	}
	return m, nil
}

// forEachGroup calls fn once per distinct key with all of its values, in
// ascending key order. Value order is deterministic: spill (map task) index
// first, then emit order within the task.
func (m *merger) forEachGroup(fn func(key string, values [][]byte) error) error {
	defer func() {
		for _, r := range m.readers {
			r.close()
		}
	}()
	for {
		// Find the minimum live key. Linear scan is fine: the reader count
		// equals the map-task count, which is small.
		minKey := ""
		found := false
		for _, r := range m.readers {
			if r.done {
				continue
			}
			if !found || r.cur.Key < minKey {
				minKey = r.cur.Key
				found = true
			}
		}
		if !found {
			return nil
		}
		var values [][]byte
		for _, r := range m.readers {
			for !r.done && r.cur.Key == minKey {
				values = append(values, r.cur.Value)
				if err := r.advance(); err != nil {
					return err
				}
			}
		}
		if err := fn(minKey, values); err != nil {
			return err
		}
	}
}
