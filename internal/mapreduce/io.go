package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"agl/internal/dfs"
)

// RecordIter streams the records of one input split.
type RecordIter func(yield func(rec []byte) error) error

// Input provides the job's records partitioned into map splits.
type Input interface {
	Splits(n int) ([]RecordIter, error)
}

// MemInput serves in-memory records, chunked into n splits.
type MemInput [][]byte

// Splits implements Input.
func (m MemInput) Splits(n int) ([]RecordIter, error) {
	if n < 1 {
		n = 1
	}
	if len(m) == 0 {
		return []RecordIter{func(func([]byte) error) error { return nil }}, nil
	}
	if n > len(m) {
		n = len(m)
	}
	chunk := (len(m) + n - 1) / n
	var out []RecordIter
	for lo := 0; lo < len(m); lo += chunk {
		hi := lo + chunk
		if hi > len(m) {
			hi = len(m)
		}
		part := m[lo:hi]
		out = append(out, func(yield func([]byte) error) error {
			for _, rec := range part {
				if err := yield(rec); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return out, nil
}

// DFSInput serves the records of a dfs dataset; each part file is a split
// (merging small parts when there are more parts than requested splits).
type DFSInput struct{ Dir *dfs.Dir }

// Splits implements Input.
func (d DFSInput) Splits(n int) ([]RecordIter, error) {
	parts, err := d.Dir.Parts()
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return []RecordIter{func(func([]byte) error) error { return nil }}, nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(parts) {
		n = len(parts)
	}
	groups := make([][]string, n)
	for i, p := range parts {
		groups[i%n] = append(groups[i%n], p)
	}
	var out []RecordIter
	for _, g := range groups {
		g := g
		out = append(out, func(yield func([]byte) error) error {
			for _, path := range g {
				r, err := dfs.OpenPart(path)
				if err != nil {
					return err
				}
				for {
					rec, err := r.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						r.Close()
						return err
					}
					if err := yield(rec); err != nil {
						r.Close()
						return err
					}
				}
				if err := r.Close(); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return out, nil
}

// PartOutput receives one reduce task's emitted pairs. Write order within a
// task is preserved; Commit publishes atomically, Abort discards.
type PartOutput interface {
	Write(kv KeyValue) error
	Commit() error
	Abort() error
}

// Output creates per-reduce-task writers.
type Output interface {
	PartWriter(part int) (PartOutput, error)
}

// MemOutput collects reduce output in memory, grouped by part.
type MemOutput struct {
	mu    sync.Mutex
	parts map[int][]KeyValue
}

// NewMemOutput builds an empty in-memory output.
func NewMemOutput() *MemOutput { return &MemOutput{parts: make(map[int][]KeyValue)} }

type memPartWriter struct {
	out  *MemOutput
	part int
	buf  []KeyValue
}

// PartWriter implements Output.
func (m *MemOutput) PartWriter(part int) (PartOutput, error) {
	return &memPartWriter{out: m, part: part}, nil
}

func (w *memPartWriter) Write(kv KeyValue) error {
	w.buf = append(w.buf, kv)
	return nil
}

func (w *memPartWriter) Commit() error {
	w.out.mu.Lock()
	defer w.out.mu.Unlock()
	w.out.parts[w.part] = w.buf
	return nil
}

func (w *memPartWriter) Abort() error {
	w.buf = nil
	return nil
}

// Pairs returns all collected pairs in part order.
func (m *MemOutput) Pairs() []KeyValue {
	m.mu.Lock()
	defer m.mu.Unlock()
	var parts []int
	for p := range m.parts {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var out []KeyValue
	for _, p := range parts {
		out = append(out, m.parts[p]...)
	}
	return out
}

// DFSOutput writes each reduce task's pairs, framed with EncodeKV, to a dfs
// part file.
type DFSOutput struct{ Dir *dfs.Dir }

type dfsPartWriter struct{ w *dfs.PartWriter }

// PartWriter implements Output.
func (d DFSOutput) PartWriter(part int) (PartOutput, error) {
	w, err := d.Dir.Writer(part)
	if err != nil {
		return nil, err
	}
	return &dfsPartWriter{w: w}, nil
}

func (w *dfsPartWriter) Write(kv KeyValue) error { return w.w.Append(EncodeKV(kv)) }
func (w *dfsPartWriter) Commit() error           { return w.w.Close() }
func (w *dfsPartWriter) Abort() error            { return w.w.Abort() }

// EncodeKV frames a KeyValue as one record: varint keylen, key, value.
func EncodeKV(kv KeyValue) []byte {
	buf := make([]byte, 0, len(kv.Key)+len(kv.Value)+4)
	buf = binary.AppendUvarint(buf, uint64(len(kv.Key)))
	buf = append(buf, kv.Key...)
	buf = append(buf, kv.Value...)
	return buf
}

// DecodeKV reverses EncodeKV. The returned value aliases rec.
func DecodeKV(rec []byte) (KeyValue, error) {
	klen, n := binary.Uvarint(rec)
	if n <= 0 || int(klen)+n > len(rec) {
		return KeyValue{}, fmt.Errorf("mapreduce: malformed kv record")
	}
	return KeyValue{
		Key:   string(rec[n : n+int(klen)]),
		Value: rec[n+int(klen):],
	}, nil
}

// ---- spill files ----

// spillWriter streams sorted pairs to a spill file. It enforces the sort
// invariant the k-way merge depends on: appended keys must be
// non-decreasing (a combiner that emits anything but its group key would
// otherwise silently corrupt the shuffle).
type spillWriter struct {
	f       *os.File
	bw      *bufio.Writer
	total   int64
	lastKey string
	wrote   bool
}

func newSpillWriter(path string) (*spillWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &spillWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (w *spillWriter) append(kv KeyValue) error {
	if w.wrote && kv.Key < w.lastKey {
		return fmt.Errorf("mapreduce: spill keys out of order (%q after %q): combiners must emit non-decreasing keys", kv.Key, w.lastKey)
	}
	w.lastKey = kv.Key
	w.wrote = true
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(kv.Key)))
	w.bw.Write(lenBuf[:n])
	w.bw.WriteString(kv.Key)
	n2 := binary.PutUvarint(lenBuf[:], uint64(len(kv.Value)))
	w.bw.Write(lenBuf[:n2])
	if _, err := w.bw.Write(kv.Value); err != nil {
		return err
	}
	w.total += int64(n + len(kv.Key) + n2 + len(kv.Value))
	return nil
}

func (w *spillWriter) close() (int64, error) {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return 0, err
	}
	return w.total, w.f.Close()
}

func (w *spillWriter) abort() { w.f.Close() }

// spillReader streams one sorted spill file. Its key and value buffers are
// reused across advance calls — per-record memory is O(largest record),
// not O(records) — so cur's contents are only valid until the next
// advance.
type spillReader struct {
	f    *os.File
	br   *bufio.Reader
	key  []byte // current key, reused buffer
	val  []byte // current value, reused buffer
	done bool
}

func openSpill(path string) (*spillReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &spillReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
	if err := r.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// growBuf returns buf resized to n, reusing its backing array when large
// enough.
func growBuf(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func (r *spillReader) advance() error {
	klen, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		r.done = true
		return nil
	}
	if err != nil {
		return err
	}
	r.key = growBuf(r.key, int(klen))
	if _, err := io.ReadFull(r.br, r.key); err != nil {
		return err
	}
	vlen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return err
	}
	r.val = growBuf(r.val, int(vlen))
	if _, err := io.ReadFull(r.br, r.val); err != nil {
		return err
	}
	return nil
}

func (r *spillReader) close() { r.f.Close() }

// merger performs a k-way merge over sorted spills and yields key groups
// as lazy iterators — no group is ever materialized in one slice.
type merger struct {
	readers  []*spillReader
	groupKey []byte // reusable copy of the current group's key bytes
	// maxGroupBytes is forwarded to group iterators for CollectValues.
	maxGroupBytes int64
	// onGroupDone, when set, observes each group's total streamed value
	// bytes (for Stats.PeakGroupBytes).
	onGroupDone func(groupBytes int64)
}

func mergeSpills(files []string) (*merger, error) {
	m := &merger{}
	for _, f := range files {
		r, err := openSpill(f)
		if err != nil {
			for _, rr := range m.readers {
				rr.close()
			}
			return nil, err
		}
		m.readers = append(m.readers, r)
	}
	return m, nil
}

// groupIter streams one key group straight out of the merge. Values come
// in deterministic order — spill (map task) index first, then emit order
// within the task — and each value aliases the owning spillReader's
// reusable buffer, so it is valid only until the next Next call.
type groupIter struct {
	m       *merger
	idx     int          // reader currently being drained
	pending *spillReader // reader whose cur value was handed out last Next
	bytes   int64
	err     error
	done    bool
}

func (g *groupIter) Next() ([]byte, bool) {
	if g.done || g.err != nil {
		return nil, false
	}
	if g.pending != nil {
		if err := g.pending.advance(); err != nil {
			g.err = err
			return nil, false
		}
		g.pending = nil
	}
	for g.idx < len(g.m.readers) {
		r := g.m.readers[g.idx]
		if !r.done && bytes.Equal(r.key, g.m.groupKey) {
			// Hand the value out now; advance lazily on the next call so
			// the buffer stays intact while the caller reads it.
			g.pending = r
			g.bytes += int64(len(r.val))
			return r.val, true
		}
		g.idx++
	}
	g.done = true
	return nil, false
}

func (g *groupIter) Err() error          { return g.err }
func (g *groupIter) collectLimit() int64 { return g.m.maxGroupBytes }

// drain exhausts whatever the reducer left unconsumed so the merge can
// move to the next group.
func (g *groupIter) drain() error {
	for {
		if _, ok := g.Next(); !ok {
			return g.err
		}
	}
}

// forEachGroup calls fn once per distinct key, in ascending key order,
// with a lazy iterator over that key's values. The iterator is only valid
// for the duration of fn.
func (m *merger) forEachGroup(fn func(key string, values ValueIter) error) error {
	defer func() {
		for _, r := range m.readers {
			r.close()
		}
	}()
	for {
		// Find the minimum live key. Linear scan is fine: the reader count
		// equals the map-task count, which is small.
		var minKey []byte
		found := false
		for _, r := range m.readers {
			if r.done {
				continue
			}
			if !found || bytes.Compare(r.key, minKey) < 0 {
				minKey = r.key
				found = true
			}
		}
		if !found {
			return nil
		}
		// Copy the key out of the winning reader's buffer: the group
		// iterator advances that reader while the group is consumed.
		m.groupKey = append(m.groupKey[:0], minKey...)
		g := &groupIter{m: m}
		if err := fn(string(m.groupKey), g); err != nil {
			return err
		}
		if err := g.drain(); err != nil {
			return err
		}
		if m.onGroupDone != nil {
			m.onGroupDone(g.bytes)
		}
	}
}
