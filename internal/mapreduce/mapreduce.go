// Package mapreduce is an in-process MapReduce engine with the semantics
// AGL's pipelines assume from production infrastructure: hash-partitioned
// shuffle with sorted spills and merged, grouped reduce calls; parallel map
// and reduce task executors; bounded task retry with atomic (all-or-
// nothing) task output, so a failed attempt never contaminates the shuffle;
// and counters plus resource accounting for the cost comparisons in the
// paper's Table 5.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// KeyValue is the unit of the shuffle.
type KeyValue struct {
	Key   string
	Value []byte
}

// Emit receives key/value pairs from mappers and reducers.
type Emit func(kv KeyValue) error

// Mapper transforms one input record into zero or more key/value pairs.
type Mapper interface {
	Map(record []byte, emit Emit) error
}

// Reducer receives every value that shares a key within its partition.
type Reducer interface {
	Reduce(key string, values [][]byte, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(record []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(record []byte, emit Emit) error { return f(record, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values [][]byte, emit Emit) error {
	return f(key, values, emit)
}

// FaultInjector lets tests simulate task failures. It is consulted at the
// start of each task attempt; a non-nil error fails that attempt.
type FaultInjector func(taskKind string, taskIndex, attempt int) error

// Config controls one job execution.
type Config struct {
	Name        string
	NumMappers  int    // parallel map tasks; default GOMAXPROCS
	NumReducers int    // shuffle partitions; default 4
	TempDir     string // spill directory; default os.TempDir()
	MaxAttempts int    // attempts per task; default 3
	// Combiner, when set, pre-reduces map-side output per partition before
	// it is spilled, cutting shuffle volume (classic MapReduce combiner).
	Combiner Reducer
	// Faults is the test-only failure hook.
	Faults FaultInjector
}

func (c Config) withDefaults() Config {
	if c.NumMappers <= 0 {
		c.NumMappers = runtime.GOMAXPROCS(0)
	}
	if c.NumReducers <= 0 {
		c.NumReducers = 4
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	return c
}

// Stats aggregates job-level accounting. Busy durations are summed across
// tasks (they exceed wall time under parallelism); the cluster cost model
// converts them to core·min.
type Stats struct {
	MapTasks, ReduceTasks int
	MapRecordsIn          int64
	MapRecordsOut         int64
	ReduceKeys            int64
	ReduceRecordsOut      int64
	BytesShuffled         int64
	Retries               int64
	MapBusy, ReduceBusy   time.Duration
	Wall                  time.Duration
	PeakGroupBytes        int64 // largest single reduce group, for OOM analysis
	counters              sync.Map
}

// IncCounter adds delta to a named counter.
func (s *Stats) IncCounter(name string, delta int64) {
	v, _ := s.counters.LoadOrStore(name, new(int64))
	atomic.AddInt64(v.(*int64), delta)
}

// Counter reads a named counter.
func (s *Stats) Counter(name string) int64 {
	v, ok := s.counters.Load(name)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(v.(*int64))
}

// Run executes a full map/shuffle/reduce cycle.
func Run(cfg Config, mapper Mapper, reducer Reducer, input Input, output Output) (*Stats, error) {
	cfg = cfg.withDefaults()
	stats := &Stats{}
	start := time.Now()

	splits, err := input.Splits(cfg.NumMappers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce %s: input: %w", cfg.Name, err)
	}
	stats.MapTasks = len(splits)
	stats.ReduceTasks = cfg.NumReducers

	spillDir, err := os.MkdirTemp(cfg.TempDir, "mr-"+sanitize(cfg.Name)+"-")
	if err != nil {
		return nil, fmt.Errorf("mapreduce %s: spill dir: %w", cfg.Name, err)
	}
	defer os.RemoveAll(spillDir)

	// ---- Map phase ----
	// spills[m][r] is the spill file of map task m for reduce partition r.
	spills := make([][]string, len(splits))
	var mapErr error
	var mapErrOnce sync.Once
	sem := make(chan struct{}, cfg.NumMappers)
	var wg sync.WaitGroup
	for m := range splits {
		wg.Add(1)
		sem <- struct{}{}
		go func(m int) {
			defer wg.Done()
			defer func() { <-sem }()
			files, err := runMapTask(cfg, stats, spillDir, m, splits[m], mapper)
			if err != nil {
				mapErrOnce.Do(func() { mapErr = err })
				return
			}
			spills[m] = files
		}(m)
	}
	wg.Wait()
	if mapErr != nil {
		return stats, fmt.Errorf("mapreduce %s: map: %w", cfg.Name, mapErr)
	}

	// ---- Reduce phase ----
	var redErr error
	var redErrOnce sync.Once
	sem2 := make(chan struct{}, cfg.NumMappers)
	var wg2 sync.WaitGroup
	for r := 0; r < cfg.NumReducers; r++ {
		wg2.Add(1)
		sem2 <- struct{}{}
		go func(r int) {
			defer wg2.Done()
			defer func() { <-sem2 }()
			var files []string
			for m := range spills {
				files = append(files, spills[m][r])
			}
			if err := runReduceTask(cfg, stats, r, files, reducer, output); err != nil {
				redErrOnce.Do(func() { redErr = err })
			}
		}(r)
	}
	wg2.Wait()
	if redErr != nil {
		return stats, fmt.Errorf("mapreduce %s: reduce: %w", cfg.Name, redErr)
	}
	stats.Wall = time.Since(start)
	return stats, nil
}

// runMapTask executes one map task with retry; on success it returns one
// committed spill file per reduce partition.
func runMapTask(cfg Config, stats *Stats, spillDir string, idx int, split RecordIter, mapper Mapper) ([]string, error) {
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&stats.Retries, 1)
		}
		files, err := tryMapTask(cfg, stats, spillDir, idx, attempt, split, mapper)
		if err == nil {
			return files, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("map task %d failed after %d attempts: %w", idx, cfg.MaxAttempts, lastErr)
}

func tryMapTask(cfg Config, stats *Stats, spillDir string, idx, attempt int, split RecordIter, mapper Mapper) (files []string, err error) {
	begin := time.Now()
	defer func() { atomic.AddInt64((*int64)(&stats.MapBusy), int64(time.Since(begin))) }()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("map task %d panicked: %v", idx, p)
		}
	}()
	if cfg.Faults != nil {
		if err := cfg.Faults("map", idx, attempt); err != nil {
			return nil, err
		}
	}
	// Buffer per partition, then sort and spill.
	buckets := make([][]KeyValue, cfg.NumReducers)
	var recordsIn, recordsOut int64
	emit := func(kv KeyValue) error {
		p := partition(kv.Key, cfg.NumReducers)
		buckets[p] = append(buckets[p], kv)
		recordsOut++
		return nil
	}
	if err := split(func(rec []byte) error {
		recordsIn++
		return mapper.Map(rec, emit)
	}); err != nil {
		return nil, err
	}

	if cfg.Combiner != nil {
		for p := range buckets {
			combined, err := combine(cfg.Combiner, buckets[p])
			if err != nil {
				return nil, err
			}
			buckets[p] = combined
		}
	}

	out := make([]string, cfg.NumReducers)
	var shuffled int64
	for p, kvs := range buckets {
		sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
		path := fmt.Sprintf("%s/m%05d-r%05d-a%d", spillDir, idx, p, attempt)
		n, err := writeSpill(path, kvs)
		if err != nil {
			return nil, err
		}
		shuffled += n
		out[p] = path
	}
	atomic.AddInt64(&stats.MapRecordsIn, recordsIn)
	atomic.AddInt64(&stats.MapRecordsOut, recordsOut)
	atomic.AddInt64(&stats.BytesShuffled, shuffled)
	return out, nil
}

// combine groups the bucket by key and runs the combiner, preserving the
// contract that combiner output replaces its input.
func combine(c Reducer, kvs []KeyValue) ([]KeyValue, error) {
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	var out []KeyValue
	emit := func(kv KeyValue) error {
		out = append(out, kv)
		return nil
	}
	for i := 0; i < len(kvs); {
		j := i
		var vals [][]byte
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			vals = append(vals, kvs[j].Value)
			j++
		}
		if err := c.Reduce(kvs[i].Key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// runReduceTask merges this partition's sorted spills, groups by key, and
// feeds the reducer, with retry. Output is staged per attempt and committed
// atomically by the Output implementation.
func runReduceTask(cfg Config, stats *Stats, idx int, files []string, reducer Reducer, output Output) error {
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&stats.Retries, 1)
		}
		if err := tryReduceTask(cfg, stats, idx, attempt, files, reducer, output); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("reduce task %d failed after %d attempts: %w", idx, cfg.MaxAttempts, lastErr)
}

func tryReduceTask(cfg Config, stats *Stats, idx, attempt int, files []string, reducer Reducer, output Output) (err error) {
	begin := time.Now()
	defer func() { atomic.AddInt64((*int64)(&stats.ReduceBusy), int64(time.Since(begin))) }()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("reduce task %d panicked: %v", idx, p)
		}
	}()
	if cfg.Faults != nil {
		if err := cfg.Faults("reduce", idx, attempt); err != nil {
			return err
		}
	}
	merged, err := mergeSpills(files)
	if err != nil {
		return err
	}
	w, err := output.PartWriter(idx)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			w.Abort()
		}
	}()
	var keys, recsOut int64
	emit := func(kv KeyValue) error {
		recsOut++
		return w.Write(kv)
	}
	err = merged.forEachGroup(func(key string, values [][]byte) error {
		keys++
		var groupBytes int64
		for _, v := range values {
			groupBytes += int64(len(v))
		}
		for {
			peak := atomic.LoadInt64(&stats.PeakGroupBytes)
			if groupBytes <= peak || atomic.CompareAndSwapInt64(&stats.PeakGroupBytes, peak, groupBytes) {
				break
			}
		}
		return reducer.Reduce(key, values, emit)
	})
	if err != nil {
		return err
	}
	if err := w.Commit(); err != nil {
		return err
	}
	committed = true
	atomic.AddInt64(&stats.ReduceKeys, keys)
	atomic.AddInt64(&stats.ReduceRecordsOut, recsOut)
	return nil
}

func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '/' || c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "job"
	}
	return string(out)
}

// IdentityMapper emits each record as a value under the key encoded in the
// record itself by a previous round; records must be EncodeKV-framed.
var IdentityMapper = MapperFunc(func(rec []byte, emit Emit) error {
	kv, err := DecodeKV(rec)
	if err != nil {
		return err
	}
	return emit(kv)
})
