// Package mapreduce is an in-process MapReduce engine with the semantics
// AGL's pipelines assume from production infrastructure: hash-partitioned
// shuffle with sorted spills and merged, grouped reduce calls; parallel map
// and reduce task executors; bounded task retry with atomic (all-or-
// nothing) task output, so a failed attempt never contaminates the shuffle;
// and counters plus resource accounting for the cost comparisons in the
// paper's Table 5.
//
// The shuffle is streaming end to end: reducers receive their value groups
// as pull-based ValueIter iterators fed directly from the k-way merge of
// sorted spill files, so a single hub key whose fan-in exceeds RAM still
// reduces in O(buffer) memory, and the combiner pre-reduces map output as
// it is spilled, before it ever hits disk.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// KeyValue is the unit of the shuffle.
type KeyValue struct {
	Key   string
	Value []byte
}

// Emit receives key/value pairs from mappers and reducers.
type Emit func(kv KeyValue) error

// Mapper transforms one input record into zero or more key/value pairs.
type Mapper interface {
	Map(record []byte, emit Emit) error
}

// ValueIter streams the values of one reduce group in deterministic order
// (spill/map-task index first, then emit order within the task).
//
// Next returns the next value and true, or nil and false once the group is
// exhausted or an error occurred; Err reports that error. The returned
// slice aliases a buffer the engine reuses for the following value: it is
// valid only until the next Next call, so a consumer that retains raw bytes
// past that point must copy them (decoding into an owned structure, as all
// AGL reducers do, is naturally safe). Use CollectValues when an algorithm
// genuinely needs the whole group at once.
type ValueIter interface {
	Next() ([]byte, bool)
	Err() error
}

// Reducer receives every value that shares a key within its partition as a
// streaming iterator. A Reducer need not drain the iterator; the engine
// skips whatever remains of the group.
type Reducer interface {
	Reduce(key string, values ValueIter, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(record []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(record []byte, emit Emit) error { return f(record, emit) }

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values ValueIter, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values ValueIter, emit Emit) error {
	return f(key, values, emit)
}

// groupLimiter is implemented by engine-provided iterators that carry the
// job's MaxGroupBytes bound for CollectValues to enforce.
type groupLimiter interface{ collectLimit() int64 }

// ErrGroupTooLarge wraps MaxGroupBytes violations (use errors.Is via the
// %w chain on the returned error's message prefix).
var ErrGroupTooLarge = fmt.Errorf("mapreduce: collected group exceeds MaxGroupBytes")

// CollectValues drains a ValueIter into an owned [][]byte slice, copying
// each value. It is the escape hatch for reducers that truly need random
// access to the whole group; when the engine was configured with
// MaxGroupBytes > 0 and the group's total value bytes exceed that bound,
// it fails fast with an error wrapping ErrGroupTooLarge instead of
// silently materializing an OOM-sized slice.
func CollectValues(values ValueIter) ([][]byte, error) {
	var limit int64
	if l, ok := values.(groupLimiter); ok {
		limit = l.collectLimit()
	}
	var out [][]byte
	var total int64
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		total += int64(len(v))
		if limit > 0 && total > limit {
			return nil, fmt.Errorf("%w (%d bytes collected, limit %d); stream the group or raise Config.MaxGroupBytes", ErrGroupTooLarge, total, limit)
		}
		out = append(out, append([]byte(nil), v...))
	}
	if err := values.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ValuesOf wraps an in-memory slice of values as a ValueIter; handy in
// tests and for adapting collected data back onto the streaming contract.
func ValuesOf(values [][]byte) ValueIter { return &sliceIter{values: values} }

// sliceIter iterates an in-memory value slice. The engine uses it to feed
// the combiner from the sorted map-output buffer.
type sliceIter struct {
	values [][]byte
	pos    int
	limit  int64
}

func (s *sliceIter) Next() ([]byte, bool) {
	if s.pos >= len(s.values) {
		return nil, false
	}
	v := s.values[s.pos]
	s.pos++
	return v, true
}

func (s *sliceIter) Err() error          { return nil }
func (s *sliceIter) collectLimit() int64 { return s.limit }

// FaultInjector lets tests simulate task failures. It is consulted at the
// start of each task attempt; a non-nil error fails that attempt.
type FaultInjector func(taskKind string, taskIndex, attempt int) error

// Config controls one job execution.
type Config struct {
	Name        string
	NumMappers  int    // parallel map tasks; default GOMAXPROCS
	NumReducers int    // shuffle partitions; default 4
	TempDir     string // spill directory; default os.TempDir()
	MaxAttempts int    // attempts per task; default 3
	// ReduceParallelism caps concurrently running reduce tasks; default
	// GOMAXPROCS (it is deliberately independent of NumMappers — shuffle
	// partition count shapes data layout, this knob shapes CPU use).
	ReduceParallelism int
	// MaxGroupBytes, when positive, bounds the total value bytes a reducer
	// may materialize from one group via CollectValues; exceeding it fails
	// the job with ErrGroupTooLarge. Streaming consumption is never
	// limited — the bound exists to keep accidental materialization of a
	// hub key from becoming an OOM.
	MaxGroupBytes int64
	// Combiner, when set, pre-reduces map-side output per partition as it
	// is spilled, cutting shuffle volume (classic MapReduce combiner). It
	// must emit keys in non-decreasing order — emitting its own group key,
	// as standard combiners do, always satisfies this.
	Combiner Reducer
	// Faults is the test-only failure hook.
	Faults FaultInjector
}

func (c Config) withDefaults() Config {
	if c.NumMappers <= 0 {
		c.NumMappers = runtime.GOMAXPROCS(0)
	}
	if c.NumReducers <= 0 {
		c.NumReducers = 4
	}
	if c.ReduceParallelism <= 0 {
		c.ReduceParallelism = runtime.GOMAXPROCS(0)
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	return c
}

// Stats aggregates job-level accounting. Busy durations are summed across
// tasks (they exceed wall time under parallelism); the cluster cost model
// converts them to core·min.
type Stats struct {
	MapTasks, ReduceTasks int
	MapRecordsIn          int64
	MapRecordsOut         int64
	ReduceKeys            int64
	ReduceRecordsOut      int64
	BytesShuffled         int64
	Retries               int64
	MapBusy, ReduceBusy   time.Duration
	Wall                  time.Duration
	// PeakGroupBytes is the largest single reduce group that streamed
	// through the merge, in value bytes. Groups are never materialized by
	// the engine, so this measures skew, not resident memory.
	PeakGroupBytes int64
	counters       sync.Map
}

// IncCounter adds delta to a named counter.
func (s *Stats) IncCounter(name string, delta int64) {
	v, _ := s.counters.LoadOrStore(name, new(int64))
	atomic.AddInt64(v.(*int64), delta)
}

// Counter reads a named counter.
func (s *Stats) Counter(name string) int64 {
	v, ok := s.counters.Load(name)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(v.(*int64))
}

// Run executes a full map/shuffle/reduce cycle. Reduce tasks are scheduled
// up front and begin merging the moment the last map task commits its
// spills (event-driven handoff rather than a second scheduling phase), so
// the reduce side's semaphore waits overlap the map tail.
func Run(cfg Config, mapper Mapper, reducer Reducer, input Input, output Output) (*Stats, error) {
	cfg = cfg.withDefaults()
	stats := &Stats{}
	start := time.Now()

	splits, err := input.Splits(cfg.NumMappers)
	if err != nil {
		return nil, fmt.Errorf("mapreduce %s: input: %w", cfg.Name, err)
	}
	stats.MapTasks = len(splits)
	stats.ReduceTasks = cfg.NumReducers

	spillDir, err := os.MkdirTemp(cfg.TempDir, "mr-"+sanitize(cfg.Name)+"-")
	if err != nil {
		return nil, fmt.Errorf("mapreduce %s: spill dir: %w", cfg.Name, err)
	}
	defer os.RemoveAll(spillDir)

	// ---- Map phase ----
	// spills[m][r] is the spill file of map task m for reduce partition r.
	// mapsDone closes when every map task has committed, releasing the
	// already-scheduled reduce tasks; mapFailed closes on the first
	// permanent map failure so reduce tasks abort instead of waiting.
	spills := make([][]string, len(splits))
	mapsDone := make(chan struct{})
	mapFailed := make(chan struct{})
	var mapsLeft = int64(len(splits))
	var mapErr error
	var mapErrOnce sync.Once
	sem := make(chan struct{}, cfg.NumMappers)
	var wg sync.WaitGroup
	if len(splits) == 0 {
		close(mapsDone)
	}
	for m := range splits {
		wg.Add(1)
		sem <- struct{}{}
		go func(m int) {
			defer wg.Done()
			defer func() { <-sem }()
			files, err := runMapTask(cfg, stats, spillDir, m, splits[m], mapper)
			if err != nil {
				mapErrOnce.Do(func() {
					mapErr = err
					close(mapFailed)
				})
				return
			}
			spills[m] = files
			if atomic.AddInt64(&mapsLeft, -1) == 0 {
				close(mapsDone)
			}
		}(m)
	}

	// ---- Reduce phase ----
	var redErr error
	var redErrOnce sync.Once
	sem2 := make(chan struct{}, cfg.ReduceParallelism)
	var wg2 sync.WaitGroup
	for r := 0; r < cfg.NumReducers; r++ {
		wg2.Add(1)
		go func(r int) {
			defer wg2.Done()
			select {
			case <-mapsDone:
			case <-mapFailed:
				return
			}
			sem2 <- struct{}{}
			defer func() { <-sem2 }()
			files := make([]string, 0, len(spills))
			for m := range spills {
				files = append(files, spills[m][r])
			}
			if err := runReduceTask(cfg, stats, r, files, reducer, output); err != nil {
				redErrOnce.Do(func() { redErr = err })
			}
		}(r)
	}
	wg.Wait()
	wg2.Wait()
	if mapErr != nil {
		return stats, fmt.Errorf("mapreduce %s: map: %w", cfg.Name, mapErr)
	}
	if redErr != nil {
		return stats, fmt.Errorf("mapreduce %s: reduce: %w", cfg.Name, redErr)
	}
	stats.Wall = time.Since(start)
	return stats, nil
}

// runMapTask executes one map task with retry; on success it returns one
// committed spill file per reduce partition.
func runMapTask(cfg Config, stats *Stats, spillDir string, idx int, split RecordIter, mapper Mapper) ([]string, error) {
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&stats.Retries, 1)
		}
		files, err := tryMapTask(cfg, stats, spillDir, idx, attempt, split, mapper)
		if err == nil {
			return files, nil
		}
		if errors.Is(err, ErrGroupTooLarge) {
			// Deterministic: the group is over the bound on every attempt.
			// Fail fast instead of re-streaming it MaxAttempts times.
			return nil, fmt.Errorf("map task %d: %w", idx, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("map task %d failed after %d attempts: %w", idx, cfg.MaxAttempts, lastErr)
}

func tryMapTask(cfg Config, stats *Stats, spillDir string, idx, attempt int, split RecordIter, mapper Mapper) (files []string, err error) {
	begin := time.Now()
	defer func() { atomic.AddInt64((*int64)(&stats.MapBusy), int64(time.Since(begin))) }()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("map task %d panicked: %v", idx, p)
		}
	}()
	if cfg.Faults != nil {
		if err := cfg.Faults("map", idx, attempt); err != nil {
			return nil, err
		}
	}
	// Buffer per partition, then sort and stream to the spill — through the
	// combiner when one is configured, so pre-reduced output is what hits
	// disk.
	buckets := make([][]KeyValue, cfg.NumReducers)
	var recordsIn, recordsOut int64
	emit := func(kv KeyValue) error {
		p := partition(kv.Key, cfg.NumReducers)
		buckets[p] = append(buckets[p], kv)
		recordsOut++
		return nil
	}
	if err := split(func(rec []byte) error {
		recordsIn++
		return mapper.Map(rec, emit)
	}); err != nil {
		return nil, err
	}

	out := make([]string, cfg.NumReducers)
	var shuffled int64
	for p, kvs := range buckets {
		sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
		path := fmt.Sprintf("%s/m%05d-r%05d-a%d", spillDir, idx, p, attempt)
		n, err := spillPartition(cfg, path, kvs)
		if err != nil {
			return nil, err
		}
		shuffled += n
		out[p] = path
	}
	atomic.AddInt64(&stats.MapRecordsIn, recordsIn)
	atomic.AddInt64(&stats.MapRecordsOut, recordsOut)
	atomic.AddInt64(&stats.BytesShuffled, shuffled)
	return out, nil
}

// spillPartition writes one partition's sorted pairs to a spill file,
// applying the combiner group by group as it writes so combined output
// streams straight to disk.
func spillPartition(cfg Config, path string, kvs []KeyValue) (int64, error) {
	w, err := newSpillWriter(path)
	if err != nil {
		return 0, err
	}
	if cfg.Combiner == nil {
		for _, kv := range kvs {
			if err := w.append(kv); err != nil {
				w.abort()
				return 0, err
			}
		}
		return w.close()
	}
	emit := func(kv KeyValue) error { return w.append(kv) }
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			j++
		}
		group := make([][]byte, 0, j-i)
		for _, kv := range kvs[i:j] {
			group = append(group, kv.Value)
		}
		it := &sliceIter{values: group, limit: cfg.MaxGroupBytes}
		if err := cfg.Combiner.Reduce(kvs[i].Key, it, emit); err != nil {
			w.abort()
			return 0, err
		}
		i = j
	}
	return w.close()
}

// runReduceTask merges this partition's sorted spills, groups by key, and
// feeds the reducer, with retry. Output is staged per attempt and committed
// atomically by the Output implementation.
func runReduceTask(cfg Config, stats *Stats, idx int, files []string, reducer Reducer, output Output) error {
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&stats.Retries, 1)
		}
		if err := tryReduceTask(cfg, stats, idx, attempt, files, reducer, output); err != nil {
			if errors.Is(err, ErrGroupTooLarge) {
				// Deterministic: the group is over the bound on every
				// attempt. Fail fast instead of re-merging it.
				return fmt.Errorf("reduce task %d: %w", idx, err)
			}
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("reduce task %d failed after %d attempts: %w", idx, cfg.MaxAttempts, lastErr)
}

func tryReduceTask(cfg Config, stats *Stats, idx, attempt int, files []string, reducer Reducer, output Output) (err error) {
	begin := time.Now()
	defer func() { atomic.AddInt64((*int64)(&stats.ReduceBusy), int64(time.Since(begin))) }()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("reduce task %d panicked: %v", idx, p)
		}
	}()
	if cfg.Faults != nil {
		if err := cfg.Faults("reduce", idx, attempt); err != nil {
			return err
		}
	}
	merged, err := mergeSpills(files)
	if err != nil {
		return err
	}
	merged.maxGroupBytes = cfg.MaxGroupBytes
	merged.onGroupDone = func(groupBytes int64) {
		for {
			peak := atomic.LoadInt64(&stats.PeakGroupBytes)
			if groupBytes <= peak || atomic.CompareAndSwapInt64(&stats.PeakGroupBytes, peak, groupBytes) {
				break
			}
		}
	}
	w, err := output.PartWriter(idx)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			w.Abort()
		}
	}()
	var keys, recsOut int64
	emit := func(kv KeyValue) error {
		recsOut++
		return w.Write(kv)
	}
	err = merged.forEachGroup(func(key string, values ValueIter) error {
		keys++
		return reducer.Reduce(key, values, emit)
	})
	if err != nil {
		return err
	}
	if err := w.Commit(); err != nil {
		return err
	}
	committed = true
	atomic.AddInt64(&stats.ReduceKeys, keys)
	atomic.AddInt64(&stats.ReduceRecordsOut, recsOut)
	return nil
}

func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '/' || c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "job"
	}
	return string(out)
}

// IdentityMapper emits each record as a value under the key encoded in the
// record itself by a previous round; records must be EncodeKV-framed.
var IdentityMapper = MapperFunc(func(rec []byte, emit Emit) error {
	kv, err := DecodeKV(rec)
	if err != nil {
		return err
	}
	return emit(kv)
})
