package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"agl/internal/dfs"
)

// wordCount pieces shared by several tests.
var wcMapper = MapperFunc(func(rec []byte, emit Emit) error {
	for _, w := range strings.Fields(string(rec)) {
		if err := emit(KeyValue{Key: w, Value: []byte("1")}); err != nil {
			return err
		}
	}
	return nil
})

var wcReducer = ReducerFunc(func(key string, values ValueIter, emit Emit) error {
	total := 0
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		total += n
	}
	if err := values.Err(); err != nil {
		return err
	}
	return emit(KeyValue{Key: key, Value: []byte(strconv.Itoa(total))})
})

func wcInput() MemInput {
	return MemInput{
		[]byte("the quick brown fox"),
		[]byte("the lazy dog"),
		[]byte("the quick dog"),
	}
}

func countsOf(pairs []KeyValue) map[string]int {
	out := map[string]int{}
	for _, kv := range pairs {
		n, _ := strconv.Atoi(string(kv.Value))
		out[kv.Key] = n
	}
	return out
}

func TestWordCount(t *testing.T) {
	out := NewMemOutput()
	stats, err := Run(Config{Name: "wc", TempDir: t.TempDir(), NumReducers: 3},
		wcMapper, wcReducer, wcInput(), out)
	if err != nil {
		t.Fatal(err)
	}
	got := countsOf(out.Pairs())
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s]=%d want %d (all: %v)", k, got[k], v, got)
		}
	}
	if stats.MapRecordsIn != 3 || stats.ReduceKeys != 6 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	base, err := Run(Config{Name: "nocomb", TempDir: t.TempDir(), NumMappers: 1},
		wcMapper, wcReducer, wcInput(), NewMemOutput())
	if err != nil {
		t.Fatal(err)
	}
	outC := NewMemOutput()
	withComb, err := Run(Config{Name: "comb", TempDir: t.TempDir(), NumMappers: 1, Combiner: wcReducer},
		wcMapper, wcReducer, wcInput(), outC)
	if err != nil {
		t.Fatal(err)
	}
	if withComb.BytesShuffled >= base.BytesShuffled {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", withComb.BytesShuffled, base.BytesShuffled)
	}
	got := countsOf(outC.Pairs())
	if got["the"] != 3 || got["dog"] != 2 {
		t.Fatalf("combiner changed results: %v", got)
	}
}

func TestMapTaskRetrySucceeds(t *testing.T) {
	var failed int32
	faults := func(kind string, idx, attempt int) error {
		if kind == "map" && idx == 0 && attempt == 0 && atomic.CompareAndSwapInt32(&failed, 0, 1) {
			return errors.New("injected map failure")
		}
		return nil
	}
	out := NewMemOutput()
	stats, err := Run(Config{Name: "retry", TempDir: t.TempDir(), Faults: faults},
		wcMapper, wcReducer, wcInput(), out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 1 {
		t.Fatalf("retries=%d", stats.Retries)
	}
	if got := countsOf(out.Pairs()); got["the"] != 3 {
		t.Fatalf("retry corrupted output: %v", got)
	}
}

func TestReduceTaskRetryDoesNotDuplicateOutput(t *testing.T) {
	// Fail every reduce task once *after* it has written some output; the
	// abort+retry must not duplicate records.
	attempts := map[string]*int32{}
	for i := 0; i < 4; i++ {
		attempts[fmt.Sprintf("r%d", i)] = new(int32)
	}
	faults := func(kind string, idx, attempt int) error {
		if kind != "reduce" {
			return nil
		}
		if atomic.AddInt32(attempts[fmt.Sprintf("r%d", idx)], 1) == 1 {
			return errors.New("injected reduce failure")
		}
		return nil
	}
	out := NewMemOutput()
	stats, err := Run(Config{Name: "rretry", TempDir: t.TempDir(), Faults: faults},
		wcMapper, wcReducer, wcInput(), out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 4 {
		t.Fatalf("retries=%d want 4", stats.Retries)
	}
	got := countsOf(out.Pairs())
	if got["the"] != 3 || len(got) != 6 {
		t.Fatalf("retry duplicated or lost output: %v", got)
	}
}

func TestPermanentFailureSurfaces(t *testing.T) {
	faults := func(kind string, idx, attempt int) error {
		if kind == "map" && idx == 0 {
			return errors.New("hard failure")
		}
		return nil
	}
	_, err := Run(Config{Name: "fail", TempDir: t.TempDir(), MaxAttempts: 2, Faults: faults},
		wcMapper, wcReducer, wcInput(), NewMemOutput())
	if err == nil || !strings.Contains(err.Error(), "hard failure") {
		t.Fatalf("err=%v", err)
	}
}

func TestPanicInUserCodeIsARetryableFailure(t *testing.T) {
	var fired int32
	panicMapper := MapperFunc(func(rec []byte, emit Emit) error {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			panic("mapper bug")
		}
		return wcMapper(rec, emit)
	})
	out := NewMemOutput()
	stats, err := Run(Config{Name: "panic", TempDir: t.TempDir(), NumMappers: 1},
		panicMapper, wcReducer, wcInput(), out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Fatal("panic did not trigger retry")
	}
	if got := countsOf(out.Pairs()); got["the"] != 3 {
		t.Fatalf("output wrong after panic retry: %v", got)
	}
}

func TestValuesGroupedAndOrderedDeterministically(t *testing.T) {
	// Each mapper emits under one key; values must arrive grouped, ordered
	// by map task then emit order.
	input := MemInput{[]byte("a:1 a:2"), []byte("a:3 a:4")}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		for _, tok := range strings.Fields(string(rec)) {
			parts := strings.Split(tok, ":")
			if err := emit(KeyValue{Key: parts[0], Value: []byte(parts[1])}); err != nil {
				return err
			}
		}
		return nil
	})
	var got []string
	reducer := ReducerFunc(func(key string, values ValueIter, emit Emit) error {
		for {
			v, ok := values.Next()
			if !ok {
				return values.Err()
			}
			got = append(got, string(v))
		}
	})
	_, err := Run(Config{Name: "order", TempDir: t.TempDir(), NumMappers: 1, NumReducers: 1},
		mapper, reducer, input, NewMemOutput())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "1,2,3,4" {
		t.Fatalf("value order: %v", got)
	}
}

func TestDFSInputOutputRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in, err := dfs.Create(filepath.Join(dir, "in"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.WriteAll([][]byte{
		[]byte("x y"), []byte("y z"), []byte("z x"), []byte("x x"),
	}, 3); err != nil {
		t.Fatal(err)
	}
	outDir, err := dfs.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Name: "dfs", TempDir: dir, NumReducers: 2},
		wcMapper, wcReducer, DFSInput{Dir: in}, DFSOutput{Dir: outDir})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := outDir.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, rec := range recs {
		kv, err := DecodeKV(rec)
		if err != nil {
			t.Fatal(err)
		}
		got[kv.Key], _ = strconv.Atoi(string(kv.Value))
	}
	if got["x"] != 4 || got["y"] != 2 || got["z"] != 2 {
		t.Fatalf("dfs round trip: %v", got)
	}
}

func TestEncodeDecodeKV(t *testing.T) {
	kv := KeyValue{Key: "node/42", Value: []byte{0, 1, 2}}
	got, err := DecodeKV(EncodeKV(kv))
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != kv.Key || !bytes.Equal(got.Value, kv.Value) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeKV([]byte{200}); err == nil {
		t.Fatal("expected malformed record error")
	}
	// Empty value allowed.
	got2, err := DecodeKV(EncodeKV(KeyValue{Key: "k"}))
	if err != nil || got2.Key != "k" || len(got2.Value) != 0 {
		t.Fatalf("empty value: %+v err=%v", got2, err)
	}
}

func TestEmptyInput(t *testing.T) {
	out := NewMemOutput()
	stats, err := Run(Config{Name: "empty", TempDir: t.TempDir()},
		wcMapper, wcReducer, MemInput{}, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pairs()) != 0 || stats.MapRecordsIn != 0 {
		t.Fatal("empty input produced output")
	}
}

func TestLargeShuffleManyKeys(t *testing.T) {
	var input MemInput
	for i := 0; i < 200; i++ {
		input = append(input, []byte(fmt.Sprintf("k%03d v", i%50)))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		k := strings.Fields(string(rec))[0]
		return emit(KeyValue{Key: k, Value: []byte("1")})
	})
	out := NewMemOutput()
	stats, err := Run(Config{Name: "many", TempDir: t.TempDir(), NumMappers: 8, NumReducers: 7},
		mapper, wcReducer, input, out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReduceKeys != 50 {
		t.Fatalf("keys=%d want 50", stats.ReduceKeys)
	}
	pairs := out.Pairs()
	keys := make([]string, 0, len(pairs))
	total := 0
	for _, kv := range pairs {
		keys = append(keys, kv.Key)
		n, _ := strconv.Atoi(string(kv.Value))
		total += n
	}
	sort.Strings(keys)
	if total != 200 || len(keys) != 50 {
		t.Fatalf("total=%d keys=%d", total, len(keys))
	}
}

func TestStatsCounters(t *testing.T) {
	s := &Stats{}
	s.IncCounter("foo", 2)
	s.IncCounter("foo", 3)
	if s.Counter("foo") != 5 || s.Counter("bar") != 0 {
		t.Fatal("counters broken")
	}
}
