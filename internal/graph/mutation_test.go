package graph

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	nodes := make([]Node, n)
	var edges []Edge
	for i := range nodes {
		nodes[i] = Node{ID: int64(i), Feat: []float64{float64(i), 1}}
		if i > 0 {
			edges = append(edges, Edge{Src: int64(i - 1), Dst: int64(i), Weight: 1})
		}
	}
	g, err := Build(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyBasicOps(t *testing.T) {
	g := lineGraph(t, 4)
	next, errs := g.Apply([]Mutation{
		AddNode(10, []float64{5, 5}),
		AddEdge(10, 0, 2),
		AddEdge(0, 1, 3), // duplicate of existing 0->1: weights merge
		RemoveEdge(1, 2),
		UpdateNodeFeat(3, []float64{9, 9}),
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if next.NumNodes() != 5 || next.NumEdges() != 3 {
		t.Fatalf("got %d nodes / %d edges, want 5/3", next.NumNodes(), next.NumEdges())
	}
	if n, ok := next.Node(3); !ok || n.Feat[0] != 9 {
		t.Fatalf("node 3 feat not updated: %+v", n)
	}
	var w01 float64
	for _, e := range next.Edges {
		if e.Src == 0 && e.Dst == 1 {
			w01 = e.Weight
		}
		if e.Src == 1 && e.Dst == 2 {
			t.Fatal("removed edge 1->2 still present")
		}
	}
	if w01 != 4 {
		t.Fatalf("duplicate add_edge should merge weights: got %v, want 4", w01)
	}
	// Dense indices of pre-existing nodes must be stable.
	for id := int64(0); id < 4; id++ {
		oi, _ := g.Index(id)
		ni, _ := next.Index(id)
		if oi != ni {
			t.Fatalf("node %d moved from dense index %d to %d", id, oi, ni)
		}
	}
}

func TestApplyCopyOnWriteIsolation(t *testing.T) {
	g := lineGraph(t, 4)
	wantNodes := append([]Node(nil), g.Nodes...)
	wantFeat := append([]float64(nil), g.Nodes[2].Feat...)
	wantEdges := append([]Edge(nil), g.Edges...)

	_, errs := g.Apply([]Mutation{
		UpdateNodeFeat(2, []float64{-1, -1}),
		RemoveEdge(0, 1),
		AddEdge(3, 0, 1),
		AddNode(99, []float64{0, 0}),
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(g.Edges, wantEdges) {
		t.Fatal("Apply mutated the receiver's edges")
	}
	if len(g.Nodes) != len(wantNodes) {
		t.Fatal("Apply mutated the receiver's node count")
	}
	if !reflect.DeepEqual(g.Nodes[2].Feat, wantFeat) {
		t.Fatal("Apply mutated a feature vector in place")
	}
	if _, ok := g.Index(99); ok {
		t.Fatal("Apply leaked a new node into the receiver's index")
	}
}

func TestApplyPartialFailure(t *testing.T) {
	g := lineGraph(t, 3)
	next, errs := g.Apply([]Mutation{
		AddEdge(0, 2, 1),                   // ok
		AddEdge(0, 777, 1),                 // unknown dst
		AddEdge(1, 1, 1),                   // self loop
		RemoveEdge(2, 0),                   // no such edge
		UpdateNodeFeat(555, []float64{1}),  // unknown node
		AddNode(0, []float64{1, 1}),        // duplicate id
		AddNode(5, []float64{1}),           // dim mismatch (graph is dim 2)
		UpdateNodeFeat(1, []float64{7, 7}), // ok
	})
	wantErr := []error{nil, ErrUnknownNode, ErrBadMutation, ErrUnknownEdge,
		ErrUnknownNode, ErrDuplicateNode, ErrBadMutation, nil}
	for i, want := range wantErr {
		if want == nil {
			if errs[i] != nil {
				t.Fatalf("mutation %d: unexpected error %v", i, errs[i])
			}
			continue
		}
		if !errors.Is(errs[i], want) {
			t.Fatalf("mutation %d: got %v, want %v", i, errs[i], want)
		}
	}
	if next.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("valid mutations did not apply: %d edges", next.NumEdges())
	}
	if n, _ := next.Node(1); n.Feat[0] != 7 {
		t.Fatal("valid update_feat after failures did not apply")
	}
}

func TestApplyAddNodeThenEdgeSameBatch(t *testing.T) {
	g := lineGraph(t, 2)
	next, errs := g.Apply([]Mutation{
		AddNode(7, []float64{1, 2}),
		AddEdge(7, 0, 1),
		AddEdge(0, 7, 1),
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if next.NumNodes() != 3 || next.NumEdges() != 3 {
		t.Fatalf("got %d/%d, want 3 nodes 3 edges", next.NumNodes(), next.NumEdges())
	}
}

func TestApplyRemoveThenReAddSameBatch(t *testing.T) {
	g := lineGraph(t, 3)
	next, errs := g.Apply([]Mutation{
		RemoveEdge(0, 1),
		AddEdge(0, 1, 5), // fresh weight, not merged with the removed edge
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	for _, e := range next.Edges {
		if e.Src == 0 && e.Dst == 1 && e.Weight != 5 {
			t.Fatalf("re-added edge weight %v, want 5", e.Weight)
		}
	}
	if next.NumEdges() != 2 {
		t.Fatalf("edge count %d, want 2", next.NumEdges())
	}
}

func TestApplyNothingAppliedReturnsReceiver(t *testing.T) {
	g := lineGraph(t, 3)
	next, errs := g.Apply([]Mutation{RemoveEdge(2, 0)})
	if next != g {
		t.Fatal("all-failed batch should return the receiver unchanged")
	}
	if errs[0] == nil {
		t.Fatal("expected an error for the failed mutation")
	}
	next, _ = g.Apply(nil)
	if next != g {
		t.Fatal("empty batch should return the receiver unchanged")
	}
}

// edgeSet canonicalizes a graph's edges for equivalence comparison.
func edgeSet(g *Graph) map[[2]int64]float64 {
	out := make(map[[2]int64]float64, len(g.Edges))
	for _, e := range g.Edges {
		out[[2]int64{e.Src, e.Dst}] = e.Weight
	}
	return out
}

// TestApplyEquivalentToRebuild is the mutation-layer property test: after
// any random mutation sequence, the incrementally mutated graph must equal
// a graph rebuilt from scratch with Build over the surviving node/edge
// set — same nodes, same features, same merged edge weights.
func TestApplyEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(30)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = Node{ID: int64(i), Feat: []float64{rng.NormFloat64(), rng.NormFloat64()}}
		}
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			edges = append(edges, Edge{Src: int64(s), Dst: int64(d), Weight: 1 + rng.Float64()})
		}
		g, err := Build(nodes, edges)
		if err != nil {
			t.Fatal(err)
		}

		// Shadow state for the from-scratch rebuild.
		shadowNodes := map[int64][]float64{}
		for _, nd := range g.Nodes {
			shadowNodes[nd.ID] = nd.Feat
		}
		shadowEdges := edgeSet(g)

		cur := g
		nextID := int64(n)
		for batch := 0; batch < 8; batch++ {
			var muts []Mutation
			for k := 0; k < 1+rng.Intn(6); k++ {
				switch rng.Intn(4) {
				case 0:
					muts = append(muts, AddNode(nextID, []float64{rng.NormFloat64(), rng.NormFloat64()}))
					nextID++
				case 1:
					s := cur.Nodes[rng.Intn(cur.NumNodes())].ID
					d := cur.Nodes[rng.Intn(cur.NumNodes())].ID
					muts = append(muts, AddEdge(s, d, 1+rng.Float64()))
				case 2:
					if cur.NumEdges() > 0 {
						e := cur.Edges[rng.Intn(cur.NumEdges())]
						muts = append(muts, RemoveEdge(e.Src, e.Dst))
					}
				case 3:
					id := cur.Nodes[rng.Intn(cur.NumNodes())].ID
					muts = append(muts, UpdateNodeFeat(id, []float64{rng.NormFloat64(), rng.NormFloat64()}))
				}
			}
			next, errs := cur.Apply(muts)
			// Replay applied mutations onto the shadow state.
			for i, m := range muts {
				if errs[i] != nil {
					continue
				}
				switch m.Op {
				case OpAddNode, OpUpdateNodeFeat:
					shadowNodes[m.ID] = m.Feat
				case OpAddEdge:
					w := m.Weight
					if w == 0 {
						w = 1
					}
					shadowEdges[[2]int64{m.Src, m.Dst}] += w
				case OpRemoveEdge:
					delete(shadowEdges, [2]int64{m.Src, m.Dst})
				}
			}
			cur = next
		}

		// Rebuild from the shadow state and compare.
		var rbNodes []Node
		var ids []int64
		for id := range shadowNodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			rbNodes = append(rbNodes, Node{ID: id, Feat: shadowNodes[id]})
		}
		var rbEdges []Edge
		for k, w := range shadowEdges {
			rbEdges = append(rbEdges, Edge{Src: k[0], Dst: k[1], Weight: w})
		}
		rebuilt, err := Build(rbNodes, rbEdges)
		if err != nil {
			t.Fatal(err)
		}
		if cur.NumNodes() != rebuilt.NumNodes() {
			t.Fatalf("trial %d: %d nodes, rebuild has %d", trial, cur.NumNodes(), rebuilt.NumNodes())
		}
		for _, nd := range rebuilt.Nodes {
			got, ok := cur.Node(nd.ID)
			if !ok || !reflect.DeepEqual(got.Feat, nd.Feat) {
				t.Fatalf("trial %d: node %d: got %+v want %+v", trial, nd.ID, got, nd)
			}
		}
		gotEdges, wantEdges := edgeSet(cur), edgeSet(rebuilt)
		if len(gotEdges) != len(wantEdges) {
			t.Fatalf("trial %d: %d edges, rebuild has %d", trial, len(gotEdges), len(wantEdges))
		}
		for k, w := range wantEdges {
			if got := gotEdges[k]; got < w-1e-9 || got > w+1e-9 {
				t.Fatalf("trial %d: edge %v weight %v, rebuild has %v", trial, k, got, w)
			}
		}
	}
}

func TestMutationJSONRoundTrip(t *testing.T) {
	muts := []Mutation{
		AddNode(3, []float64{1, 2}),
		AddEdge(1, 2, 2.5),
		RemoveEdge(1, 2),
		UpdateNodeFeat(3, []float64{4}),
	}
	b, err := json.Marshal(muts)
	if err != nil {
		t.Fatal(err)
	}
	var back []Mutation
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(muts, back) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", muts, back)
	}
	if _, err := ParseMutOp("drop_table"); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("unknown op parse: %v", err)
	}
	var m Mutation
	if err := json.Unmarshal([]byte(`{"op":"nope"}`), &m); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestVersionedApplyAndLog(t *testing.T) {
	g := lineGraph(t, 4)
	v := NewVersionedCap(g, 2)
	if _, ver := v.Snapshot(); ver != 0 {
		t.Fatalf("fresh version %d, want 0", ver)
	}

	_, v1, errs := v.Apply([]Mutation{AddEdge(0, 2, 1)})
	if v1 != 1 || errs[0] != nil {
		t.Fatalf("apply 1: version %d errs %v", v1, errs)
	}
	// All-failed batch: version unchanged.
	_, vSame, errs := v.Apply([]Mutation{RemoveEdge(3, 0)})
	if vSame != 1 || errs[0] == nil {
		t.Fatalf("failed batch bumped version to %d", vSame)
	}
	_, v2, _ := v.Apply([]Mutation{AddEdge(1, 3, 1)})
	_, v3, _ := v.Apply([]Mutation{RemoveEdge(0, 2)})
	if v2 != 2 || v3 != 3 {
		t.Fatalf("versions %d/%d, want 2/3", v2, v3)
	}

	// Log capacity 2: batches 2 and 3 retained, 1 trimmed.
	if entries, ok := v.Since(1); !ok || len(entries) != 2 ||
		entries[0].Version != 2 || entries[1].Version != 3 {
		t.Fatalf("Since(1) = %+v ok=%v", entries, ok)
	}
	if _, ok := v.Since(0); ok {
		t.Fatal("Since(0) should report the log trimmed")
	}
	if entries, ok := v.Since(3); !ok || len(entries) != 0 {
		t.Fatalf("Since(current) = %+v ok=%v", entries, ok)
	}

	cur, ver := v.Snapshot()
	if ver != 3 {
		t.Fatalf("version %d, want 3", ver)
	}
	if _, found := findEdge(cur, 0, 2); found {
		t.Fatal("removed edge visible in snapshot")
	}
	if _, found := findEdge(cur, 1, 3); !found {
		t.Fatal("added edge missing from snapshot")
	}
}

func TestVersionedConcurrentReadersSeeConsistentSnapshots(t *testing.T) {
	g := lineGraph(t, 8)
	v := NewVersioned(g)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			id := int64(i % 8)
			peer := int64((i + 3) % 8)
			if id == peer {
				continue
			}
			v.Apply([]Mutation{AddEdge(id, peer, 1), RemoveEdge(id, peer)})
		}
	}()
	for i := 0; i < 500; i++ {
		snap, _ := v.Snapshot()
		// A consistent snapshot's CSR must reference only in-range indices;
		// building it exercises every edge against the node index.
		if csr := snap.CSR(); csr.NumRows != snap.NumNodes() {
			t.Fatalf("snapshot CSR rows %d, nodes %d", csr.NumRows, snap.NumNodes())
		}
	}
	<-done
}

func findEdge(g *Graph, src, dst int64) (Edge, bool) {
	for _, e := range g.Edges {
		if e.Src == src && e.Dst == dst {
			return e, true
		}
	}
	return Edge{}, false
}

func TestApplyFirstNodeSetsFeatureDim(t *testing.T) {
	g, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	next, errs := g.Apply([]Mutation{
		AddNode(1, []float64{1, 2, 3}),
		AddNode(2, []float64{4, 5}), // dim mismatch with the batch's first node
	})
	if errs[0] != nil {
		t.Fatalf("first node rejected: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrBadMutation) {
		t.Fatalf("dim mismatch accepted: %v", errs[1])
	}
	if next.FeatureDim() != 3 {
		t.Fatalf("feature dim %d, want 3", next.FeatureDim())
	}
}

func BenchmarkApplyBatch(b *testing.B) {
	nodes := make([]Node, 5000)
	var edges []Edge
	rng := rand.New(rand.NewSource(1))
	for i := range nodes {
		nodes[i] = Node{ID: int64(i), Feat: []float64{1, 2}}
	}
	for i := 0; i < 25000; i++ {
		s, d := rng.Intn(5000), rng.Intn(5000)
		if s != d {
			edges = append(edges, Edge{Src: int64(s), Dst: int64(d), Weight: 1})
		}
	}
	g, err := Build(nodes, edges)
	if err != nil {
		b.Fatal(err)
	}
	muts := make([]Mutation, 64)
	for i := range muts {
		s, d := rng.Intn(5000), rng.Intn(5000)
		if s == d {
			d = (d + 1) % 5000
		}
		muts[i] = AddEdge(int64(s), int64(d), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next, _ := g.Apply(muts); next == g {
			b.Fatal("nothing applied")
		}
	}
}
