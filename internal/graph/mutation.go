package graph

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Sentinel errors for mutation application. Callers distinguish client
// mistakes (unknown ids, duplicates) from internal failures with errors.Is.
var (
	// ErrUnknownNode marks a mutation referencing a node absent from the graph.
	ErrUnknownNode = errors.New("graph: unknown node")
	// ErrUnknownEdge marks a RemoveEdge for an edge that does not exist.
	ErrUnknownEdge = errors.New("graph: unknown edge")
	// ErrDuplicateNode marks an AddNode whose id already exists.
	ErrDuplicateNode = errors.New("graph: duplicate node")
	// ErrBadMutation marks a structurally invalid mutation (self loop,
	// feature-dimension mismatch, unknown op).
	ErrBadMutation = errors.New("graph: bad mutation")
)

// MutOp enumerates the graph mutation operations.
type MutOp uint8

// Mutation operations. RemoveNode is deliberately absent: dense node
// indices stay stable across every mutation, which is what lets derived
// structures (LocalFlattener rows, dependency indexes) update
// copy-on-write instead of rebuilding.
const (
	OpAddNode MutOp = iota + 1
	OpAddEdge
	OpRemoveEdge
	OpUpdateNodeFeat
)

// String returns the wire name of the operation.
func (op MutOp) String() string {
	switch op {
	case OpAddNode:
		return "add_node"
	case OpAddEdge:
		return "add_edge"
	case OpRemoveEdge:
		return "remove_edge"
	case OpUpdateNodeFeat:
		return "update_feat"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ParseMutOp parses the wire name of a mutation operation.
func ParseMutOp(s string) (MutOp, error) {
	switch s {
	case "add_node":
		return OpAddNode, nil
	case "add_edge":
		return OpAddEdge, nil
	case "remove_edge":
		return OpRemoveEdge, nil
	case "update_feat":
		return OpUpdateNodeFeat, nil
	}
	return 0, fmt.Errorf("%w: unknown op %q", ErrBadMutation, s)
}

// Mutation is one streamed graph change. AddNode and UpdateNodeFeat use
// ID + Feat; AddEdge uses Src/Dst/Weight/Feat; RemoveEdge uses Src/Dst.
type Mutation struct {
	Op MutOp

	ID   int64     // AddNode, UpdateNodeFeat
	Feat []float64 // AddNode, UpdateNodeFeat (node features); AddEdge (edge features)

	Src, Dst int64   // AddEdge, RemoveEdge
	Weight   float64 // AddEdge (0 means 1, matching Build)
}

// Convenience constructors.

// AddNode inserts a new isolated node.
func AddNode(id int64, feat []float64) Mutation {
	return Mutation{Op: OpAddNode, ID: id, Feat: feat}
}

// AddEdge inserts a directed edge; inserting an existing (src, dst) pair
// merges weights, the same contract as Build.
func AddEdge(src, dst int64, weight float64) Mutation {
	return Mutation{Op: OpAddEdge, Src: src, Dst: dst, Weight: weight}
}

// RemoveEdge deletes the directed edge (src, dst).
func RemoveEdge(src, dst int64) Mutation {
	return Mutation{Op: OpRemoveEdge, Src: src, Dst: dst}
}

// UpdateNodeFeat replaces a node's feature vector.
func UpdateNodeFeat(id int64, feat []float64) Mutation {
	return Mutation{Op: OpUpdateNodeFeat, ID: id, Feat: feat}
}

// mutationJSON is the wire form of a Mutation (POST /update and the
// mutation log's serialized shape).
type mutationJSON struct {
	Op string `json:"op"`
	// Identity fields carry no omitempty: 0 is a legitimate node id and
	// must stay visible on the wire (the catch-up feed in particular).
	ID     int64     `json:"id"`
	Feat   []float64 `json:"feat,omitempty"`
	Src    int64     `json:"src"`
	Dst    int64     `json:"dst"`
	Weight float64   `json:"weight,omitempty"`
	// Quantized feature payload (the ?codec=q8 feed form, see
	// mutation_q8.go): base64 int8 bytes plus the affine pair. Mutually
	// exclusive with Feat; q8 wins when both are present.
	FeatQ8    []byte  `json:"feat_q8,omitempty"`
	FeatScale float32 `json:"feat_scale,omitempty"`
	FeatZero  float32 `json:"feat_zero,omitempty"`
}

// MarshalJSON encodes the mutation with a string op name.
func (m Mutation) MarshalJSON() ([]byte, error) {
	return json.Marshal(mutationJSON{
		Op: m.Op.String(), ID: m.ID, Feat: m.Feat,
		Src: m.Src, Dst: m.Dst, Weight: m.Weight,
	})
}

// UnmarshalJSON decodes a mutation encoded by MarshalJSON or by the q8
// feed form (feat_q8/feat_scale/feat_zero), which dequantizes here so
// every consumer of the wire type handles both transparently.
func (m *Mutation) UnmarshalJSON(b []byte) error {
	var w mutationJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	op, err := ParseMutOp(w.Op)
	if err != nil {
		return err
	}
	feat := w.Feat
	if len(w.FeatQ8) > 0 {
		feat = dequantFeat(w.FeatQ8, w.FeatScale, w.FeatZero)
	}
	*m = Mutation{Op: op, ID: w.ID, Feat: feat, Src: w.Src, Dst: w.Dst, Weight: w.Weight}
	return nil
}

// Apply returns a new graph with the batch's valid mutations applied and a
// positional error slice (nil entry = applied). Invalid mutations are
// skipped; the rest apply in order, so an AddNode can be referenced by a
// later AddEdge in the same batch. When nothing applies, the receiver is
// returned unchanged.
//
// Apply is copy-on-write: the receiver is never modified, and a snapshot
// held by an in-flight reader (a LocalFlattener extraction, a CSR build)
// stays internally consistent forever. Node and edge slices are copied
// once per batch (O(N+E)); the id index is shared unless the batch adds
// nodes. Dense node indices are stable: new nodes append, existing nodes
// never move.
func (g *Graph) Apply(muts []Mutation) (*Graph, []error) {
	errs := make([]error, len(muts))
	if len(muts) == 0 {
		return g, errs
	}

	nodes := append([]Node(nil), g.Nodes...)
	index := g.index // shared until the first AddNode copies it
	indexCopied := false
	edges := append([]Edge(nil), g.Edges...)
	// epos maps (src, dst) to its index in edges; removed marks tombstones
	// compacted away at the end. Both are built lazily on the first edge op.
	var epos map[[2]int64]int
	var removed map[int]bool
	edgeIndex := func() {
		if epos != nil {
			return
		}
		epos = make(map[[2]int64]int, len(edges))
		for i, e := range edges {
			epos[[2]int64{e.Src, e.Dst}] = i
		}
		removed = make(map[int]bool)
	}
	featDim := g.FeatureDim()
	applied := 0

	for i, m := range muts {
		switch m.Op {
		case OpAddNode:
			if _, dup := index[m.ID]; dup {
				errs[i] = fmt.Errorf("add_node %d: %w", m.ID, ErrDuplicateNode)
				continue
			}
			if len(nodes) > 0 && len(m.Feat) != featDim {
				errs[i] = fmt.Errorf("add_node %d: feat dim %d, graph has %d: %w",
					m.ID, len(m.Feat), featDim, ErrBadMutation)
				continue
			}
			if !indexCopied {
				// Copy the id index once, on the first AddNode of the batch;
				// edge-only batches keep sharing the receiver's read-only map.
				cp := make(map[int64]int, len(index)+4)
				for id, j := range index {
					cp[id] = j
				}
				index = cp
				indexCopied = true
			}
			index[m.ID] = len(nodes)
			nodes = append(nodes, Node{ID: m.ID, Feat: append([]float64(nil), m.Feat...)})
			if len(nodes) == 1 {
				featDim = len(m.Feat)
			}
		case OpUpdateNodeFeat:
			j, ok := index[m.ID]
			if !ok {
				errs[i] = fmt.Errorf("update_feat %d: %w", m.ID, ErrUnknownNode)
				continue
			}
			if len(m.Feat) != featDim {
				errs[i] = fmt.Errorf("update_feat %d: feat dim %d, graph has %d: %w",
					m.ID, len(m.Feat), featDim, ErrBadMutation)
				continue
			}
			// Replace the Feat pointer; the old snapshot keeps the old slice.
			nodes[j].Feat = append([]float64(nil), m.Feat...)
		case OpAddEdge:
			if m.Src == m.Dst {
				errs[i] = fmt.Errorf("add_edge %d->%d: self loop: %w", m.Src, m.Dst, ErrBadMutation)
				continue
			}
			if _, ok := index[m.Src]; !ok {
				errs[i] = fmt.Errorf("add_edge %d->%d: source: %w", m.Src, m.Dst, ErrUnknownNode)
				continue
			}
			if _, ok := index[m.Dst]; !ok {
				errs[i] = fmt.Errorf("add_edge %d->%d: destination: %w", m.Src, m.Dst, ErrUnknownNode)
				continue
			}
			edgeIndex()
			w := m.Weight
			if w == 0 {
				w = 1
			}
			k := [2]int64{m.Src, m.Dst}
			if j, ok := epos[k]; ok {
				if removed[j] {
					// Re-adding an edge removed earlier in the batch: fresh
					// weight, not a merge with the dead entry.
					removed[j] = false
					edges[j] = Edge{Src: m.Src, Dst: m.Dst, Weight: w, Feat: m.Feat}
				} else {
					edges[j].Weight += w // duplicate (src, dst): merge, as Build does
				}
			} else {
				epos[k] = len(edges)
				edges = append(edges, Edge{Src: m.Src, Dst: m.Dst, Weight: w, Feat: m.Feat})
			}
		case OpRemoveEdge:
			edgeIndex()
			k := [2]int64{m.Src, m.Dst}
			j, ok := epos[k]
			if !ok || removed[j] {
				errs[i] = fmt.Errorf("remove_edge %d->%d: %w", m.Src, m.Dst, ErrUnknownEdge)
				continue
			}
			removed[j] = true
		default:
			errs[i] = fmt.Errorf("op %d: %w", m.Op, ErrBadMutation)
			continue
		}
		applied++
	}

	if applied == 0 {
		return g, errs
	}
	if len(removed) > 0 {
		kept := edges[:0]
		for j, e := range edges {
			if !removed[j] {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	return &Graph{Nodes: nodes, Edges: edges, index: index}, errs
}
