package graph

import (
	"sync"
	"sync/atomic"
)

// LogEntry is one committed mutation batch: the applied mutations (invalid
// ones already filtered out) and the version the graph reached after them.
type LogEntry struct {
	Version uint64     `json:"version"`
	Muts    []Mutation `json:"muts"`
}

// Versioned is a mutable graph handle built from immutable snapshots: a
// current *Graph swapped atomically on every Apply, a monotonically
// increasing version, and a bounded log of recent mutation batches.
// Readers take a snapshot and keep a fully consistent view no matter how
// many mutations land afterwards (copy-on-write, see Graph.Apply);
// consumers that maintain derived state (caches, dependency indexes)
// catch up either by receiving Apply's return values or by replaying
// Since(version).
//
// Snapshot and Version are safe for any number of concurrent readers;
// Apply is safe for concurrent writers (serialized internally).
type Versioned struct {
	mu     sync.Mutex // serializes Apply and log access
	cur    atomic.Pointer[Graph]
	ver    atomic.Uint64
	log    []LogEntry
	logCap int
}

// DefaultLogCap bounds the retained mutation log (in batches) when
// NewVersioned is given no explicit capacity.
const DefaultLogCap = 1024

// NewVersioned wraps g (version 0) with the default log capacity.
func NewVersioned(g *Graph) *Versioned {
	return NewVersionedCap(g, DefaultLogCap)
}

// NewVersionedCap wraps g with a mutation log retaining at most logCap
// batches (<= 0 disables the log).
func NewVersionedCap(g *Graph, logCap int) *Versioned {
	v := &Versioned{logCap: logCap}
	v.cur.Store(g)
	return v
}

// Snapshot returns the current graph and its version. The graph is
// immutable; it remains valid and internally consistent forever.
func (v *Versioned) Snapshot() (*Graph, uint64) {
	// Load version first: a concurrent Apply publishes the graph before
	// the version, so the pair can only be (new graph, old version) —
	// never a version claiming mutations the graph does not contain.
	ver := v.ver.Load()
	return v.cur.Load(), ver
}

// Version returns the current version without loading the graph.
func (v *Versioned) Version() uint64 { return v.ver.Load() }

// Apply commits a mutation batch: valid mutations apply in order on a
// copy-on-write successor graph, invalid ones are reported positionally
// (see Graph.Apply). It returns the new snapshot and its version; when no
// mutation applied the graph and version are unchanged.
func (v *Versioned) Apply(muts []Mutation) (*Graph, uint64, []error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.cur.Load()
	next, errs := cur.Apply(muts)
	if next == cur { // nothing applied
		return cur, v.ver.Load(), errs
	}
	v.cur.Store(next)
	ver := v.ver.Add(1)
	if v.logCap > 0 {
		applied := make([]Mutation, 0, len(muts))
		for i, m := range muts {
			if errs[i] == nil {
				applied = append(applied, m)
			}
		}
		v.log = append(v.log, LogEntry{Version: ver, Muts: applied})
		if len(v.log) > v.logCap {
			v.log = append(v.log[:0:0], v.log[len(v.log)-v.logCap:]...)
		}
	}
	return next, ver, errs
}

// Since returns every logged batch with Version > version, oldest first.
// ok is false when the log has been trimmed past the requested version
// (or logging is disabled) and the caller cannot catch up incrementally —
// rebuild from a fresh Snapshot instead.
func (v *Versioned) Since(version uint64) (entries []LogEntry, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.ver.Load()
	if version >= cur {
		return nil, true
	}
	// The log holds batches (oldest+1 .. cur); catching up from `version`
	// needs every batch starting at version+1.
	if v.logCap <= 0 || len(v.log) == 0 || v.log[0].Version > version+1 {
		return nil, false
	}
	for _, e := range v.log {
		if e.Version > version {
			entries = append(entries, e)
		}
	}
	return entries, true
}
