package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteNodeTable writes the node table as TSV: id<TAB>f1,f2,...
func WriteNodeTable(w io.Writer, nodes []Node) error {
	bw := bufio.NewWriter(w)
	for _, n := range nodes {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", n.ID, joinFloats(n.Feat)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNodeTable parses a TSV node table written by WriteNodeTable.
func ReadNodeTable(r io.Reader) ([]Node, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []Node
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 2)
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: node table line %d: %w", line, err)
		}
		var feat []float64
		if len(parts) == 2 && parts[1] != "" {
			feat, err = splitFloats(parts[1])
			if err != nil {
				return nil, fmt.Errorf("graph: node table line %d: %w", line, err)
			}
		}
		out = append(out, Node{ID: id, Feat: feat})
	}
	return out, sc.Err()
}

// WriteEdgeTable writes the edge table as TSV: src<TAB>dst<TAB>weight[<TAB>f1,f2,...]
func WriteEdgeTable(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if len(e.Feat) > 0 {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\t%s\n", e.Src, e.Dst,
				formatFloat(e.Weight), joinFloats(e.Feat)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", e.Src, e.Dst, formatFloat(e.Weight)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeTable parses a TSV edge table written by WriteEdgeTable.
func ReadEdgeTable(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) < 2 {
			return nil, fmt.Errorf("graph: edge table line %d: need src and dst", line)
		}
		src, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge table line %d: %w", line, err)
		}
		dst, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge table line %d: %w", line, err)
		}
		e := Edge{Src: src, Dst: dst, Weight: 1}
		if len(parts) >= 3 && parts[2] != "" {
			e.Weight, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: edge table line %d: %w", line, err)
			}
		}
		if len(parts) >= 4 && parts[3] != "" {
			e.Feat, err = splitFloats(parts[3])
			if err != nil {
				return nil, fmt.Errorf("graph: edge table line %d: %w", line, err)
			}
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func joinFloats(fs []float64) string {
	var b strings.Builder
	for i, f := range fs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(formatFloat(f))
	}
	return b.String()
}

func splitFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// LoadTables opens and parses node/edge table TSVs and builds the graph —
// the shared loader for every CLI binary.
func LoadTables(nodePath, edgePath string) (*Graph, error) {
	nf, err := os.Open(nodePath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	nodes, err := ReadNodeTable(nf)
	if err != nil {
		return nil, fmt.Errorf("graph: node table %s: %w", nodePath, err)
	}
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	edges, err := ReadEdgeTable(ef)
	if err != nil {
		return nil, fmt.Errorf("graph: edge table %s: %w", edgePath, err)
	}
	return Build(nodes, edges)
}
