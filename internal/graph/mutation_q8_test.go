package graph

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestQuantizedFeedRoundTrip marshals a feed entry in the q8 form and
// decodes it through the ordinary Mutation decoder: feature payloads must
// come back within the affine error bound (scale/2 per component) and
// everything else bit-exact.
func TestQuantizedFeedRoundTrip(t *testing.T) {
	entries := []LogEntry{
		{Version: 7, Muts: []Mutation{
			AddNode(0, []float64{-1.5, 0, 2.25, 1e-3}),
			UpdateNodeFeat(9, []float64{1000, -1000, 3.5, 0.125}),
			AddEdge(0, 9, 2.5),
			RemoveEdge(3, 4),
		}},
		{Version: 8, Muts: []Mutation{
			UpdateNodeFeat(1, []float64{5, 5, 5, 5}), // constant row
		}},
	}
	blob, err := json.Marshal(QuantizeLog(entries))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"feat_q8"`) {
		t.Fatalf("q8 form did not pack features: %s", blob)
	}
	if strings.Contains(string(blob), `"feat":`) {
		t.Fatalf("q8 form leaked float payloads: %s", blob)
	}

	var got []LogEntry
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		ge := got[i]
		if ge.Version != e.Version || len(ge.Muts) != len(e.Muts) {
			t.Fatalf("entry %d: got version %d/%d muts, want %d/%d",
				i, ge.Version, len(ge.Muts), e.Version, len(e.Muts))
		}
		for j, m := range e.Muts {
			gm := ge.Muts[j]
			if gm.Op != m.Op || gm.ID != m.ID || gm.Src != m.Src || gm.Dst != m.Dst || gm.Weight != m.Weight {
				t.Fatalf("entry %d mut %d: metadata changed: got %+v want %+v", i, j, gm, m)
			}
			if len(gm.Feat) != len(m.Feat) {
				t.Fatalf("entry %d mut %d: feat dim %d, want %d", i, j, len(gm.Feat), len(m.Feat))
			}
			if len(m.Feat) == 0 {
				continue
			}
			low, high := m.Feat[0], m.Feat[0]
			for _, v := range m.Feat {
				low, high = math.Min(low, v), math.Max(high, v)
			}
			bound := (high-low)/255/2 + 1e-6
			if low == high {
				bound = math.Abs(low)/127/2 + 1e-6
			}
			for k := range m.Feat {
				if d := math.Abs(gm.Feat[k] - m.Feat[k]); d > bound {
					t.Fatalf("entry %d mut %d dim %d: error %g exceeds bound %g (got %g want %g)",
						i, j, k, d, bound, gm.Feat[k], m.Feat[k])
				}
			}
		}
	}
}

// TestQuantizedFeedNonFiniteFallback checks that a payload the quantizer
// cannot represent travels in the float form instead of failing the feed.
func TestQuantizedFeedNonFiniteFallback(t *testing.T) {
	entries := []LogEntry{{Version: 1, Muts: []Mutation{
		UpdateNodeFeat(2, []float64{1, math.Inf(1)}),
	}}}
	// The q8 encoder must punt to the float form rather than encode
	// garbage; encoding/json then rejects the Inf exactly as it does on the
	// plain feed — a loud error, not a silently corrupted payload.
	if _, err := json.Marshal(QuantizeLog(entries)); err == nil {
		t.Fatal("non-finite payload marshaled silently; want float-form rejection")
	}
}

// TestQuantizedFeedEmptyAndNilFeat: edge ops with no payload must not grow
// spurious q8 fields.
func TestQuantizedFeedEmptyAndNilFeat(t *testing.T) {
	entries := []LogEntry{{Version: 3, Muts: []Mutation{
		AddEdge(1, 2, 1),
		RemoveEdge(1, 2),
	}}}
	blob, err := json.Marshal(QuantizeLog(entries))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "feat") {
		t.Fatalf("payload-free ops grew feat fields: %s", blob)
	}
	var got []LogEntry
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got[0].Muts[0].Feat != nil || got[0].Muts[1].Feat != nil {
		t.Fatalf("payload-free ops decoded with features: %+v", got[0].Muts)
	}
}
