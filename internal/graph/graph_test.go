package graph

import (
	"bytes"
	"strings"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(
		[]Node{
			{ID: 10, Feat: []float64{1, 2}},
			{ID: 20, Feat: []float64{3, 4}},
			{ID: 30, Feat: []float64{5, 6}},
		},
		[]Edge{
			{Src: 10, Dst: 20, Weight: 2},
			{Src: 20, Dst: 30},
			{Src: 30, Dst: 10, Weight: 0.5},
			{Src: 10, Dst: 10}, // self loop, dropped
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := testGraph(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.FeatureDim() != 2 {
		t.Fatalf("feat dim %d", g.FeatureDim())
	}
	if i, ok := g.Index(20); !ok || i != 1 {
		t.Fatalf("Index(20)=%d,%v", i, ok)
	}
	if _, ok := g.Index(99); ok {
		t.Fatal("unknown id resolved")
	}
	n, ok := g.Node(30)
	if !ok || n.Feat[0] != 5 {
		t.Fatal("Node lookup failed")
	}
	// Defaulted weight.
	for _, e := range g.Edges {
		if e.Src == 20 && e.Weight != 1 {
			t.Fatalf("default weight not applied: %v", e.Weight)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]Node{{ID: 1}, {ID: 1}}, nil); err == nil {
		t.Fatal("expected duplicate node error")
	}
	if _, err := Build([]Node{{ID: 1}}, []Edge{{Src: 1, Dst: 2}}); err == nil {
		t.Fatal("expected unknown destination error")
	}
	if _, err := Build([]Node{{ID: 2}}, []Edge{{Src: 1, Dst: 2}}); err == nil {
		t.Fatal("expected unknown source error")
	}
}

func TestCSROrientation(t *testing.T) {
	g := testGraph(t)
	a := g.CSR()
	// Edge 10->20 must appear at row index(20), col index(10).
	if a.At(g.MustIndex(20), g.MustIndex(10)) != 2 {
		t.Fatal("CSR orientation wrong: rows must be destinations")
	}
	if a.At(g.MustIndex(10), g.MustIndex(20)) != 0 {
		t.Fatal("CSR has reversed edge that doesn't exist")
	}
}

func TestDegrees(t *testing.T) {
	g := testGraph(t)
	in := g.InDegrees()
	out := g.OutDegrees()
	if in[g.MustIndex(20)] != 1 || out[g.MustIndex(10)] != 1 {
		t.Fatalf("degrees wrong: in=%v out=%v", in, out)
	}
}

func TestAddReverseEdges(t *testing.T) {
	g := testGraph(t)
	u, err := g.AddReverseEdges()
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEdges() != 6 {
		t.Fatalf("edges=%d want 6", u.NumEdges())
	}
	// Idempotent: mirroring again adds nothing.
	u2, err := u.AddReverseEdges()
	if err != nil {
		t.Fatal(err)
	}
	if u2.NumEdges() != 6 {
		t.Fatalf("AddReverseEdges not idempotent: %d", u2.NumEdges())
	}
}

func TestStats(t *testing.T) {
	g := testGraph(t)
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 3 || s.MaxInDegree != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestNodeTableRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteNodeTable(&buf, g.Nodes); err != nil {
		t.Fatal(err)
	}
	nodes, err := ReadNodeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[1].ID != 20 || nodes[1].Feat[1] != 4 {
		t.Fatalf("round trip: %+v", nodes)
	}
}

func TestEdgeTableRoundTrip(t *testing.T) {
	edges := []Edge{
		{Src: 1, Dst: 2, Weight: 0.5, Feat: []float64{9, 8}},
		{Src: 2, Dst: 3, Weight: 1},
	}
	var buf bytes.Buffer
	if err := WriteEdgeTable(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Weight != 0.5 || got[0].Feat[1] != 8 || got[1].Feat != nil {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReadTablesRejectGarbage(t *testing.T) {
	if _, err := ReadNodeTable(strings.NewReader("notanint\t1,2\n")); err == nil {
		t.Fatal("expected node parse error")
	}
	if _, err := ReadEdgeTable(strings.NewReader("1\n")); err == nil {
		t.Fatal("expected edge column error")
	}
	if _, err := ReadEdgeTable(strings.NewReader("1\t2\tx\n")); err == nil {
		t.Fatal("expected weight parse error")
	}
}

func TestSortedIDs(t *testing.T) {
	g, _ := Build([]Node{{ID: 5}, {ID: 1}, {ID: 3}}, nil)
	ids := g.SortedIDs()
	if ids[0] != 1 || ids[2] != 5 {
		t.Fatalf("SortedIDs: %v", ids)
	}
}
