package graph

import (
	"encoding/json"
	"math"
)

// Quantized wire form for the mutation catch-up feed. Feature payloads
// dominate the feed's bandwidth (AddNode/UpdateNodeFeat carry a full
// float64 vector each); the q8 form packs them as int8 with a per-vector
// affine (scale, zero) pair — the same scheme as the serving tier's row
// codec (internal/serve), kept local here because serve imports graph.
// The encoding is lossy (absolute error at most scale/2 per component),
// so it is strictly opt-in: GET /mutations?codec=q8. Decoding is
// transparent — Mutation.UnmarshalJSON accepts both forms.

// quantizeFeat encodes src as int8 against an affine (scale, zero):
// a stored q decodes to (float64(q) - zero) * scale. ok is false when src
// is empty or contains a non-finite value, in which case the caller must
// fall back to the float form.
func quantizeFeat(src []float64) (q []byte, scale, zero float32, ok bool) {
	if len(src) == 0 {
		return nil, 0, 0, false
	}
	low, high := math.Inf(1), math.Inf(-1)
	for _, v := range src {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, 0, false
		}
		if v < low {
			low = v
		}
		if v > high {
			high = v
		}
	}
	var s64 float64
	switch {
	case low == high && low == 0:
		s64 = 1
	case low == high:
		s64 = math.Abs(low) / 127
	default:
		s64 = (high - low) / 255
	}
	scale = float32(s64)
	s64 = float64(scale) // quantize against the value decode will see
	zero = float32(-128 - low/s64)
	z64 := float64(zero)
	q = make([]byte, len(src))
	for i, v := range src {
		r := math.Round(v/s64 + z64)
		if r < -128 {
			r = -128
		} else if r > 127 {
			r = 127
		}
		q[i] = byte(int8(r))
	}
	return q, scale, zero, true
}

// dequantFeat decodes a q8 feature payload back to float64s.
func dequantFeat(q []byte, scale, zero float32) []float64 {
	out := make([]float64, len(q))
	s, z := float64(scale), float64(zero)
	for i, b := range q {
		out[i] = (float64(int8(b)) - z) * s
	}
	return out
}

// q8Mutation marshals a Mutation with its feature payload quantized.
// Non-finite payloads fall back to the float form rather than failing the
// whole feed response.
type q8Mutation Mutation

// MarshalJSON encodes the mutation in the q8 wire form.
func (m q8Mutation) MarshalJSON() ([]byte, error) {
	w := mutationJSON{
		Op: m.Op.String(), ID: m.ID,
		Src: m.Src, Dst: m.Dst, Weight: m.Weight,
	}
	if q, scale, zero, ok := quantizeFeat(m.Feat); ok {
		w.FeatQ8, w.FeatScale, w.FeatZero = q, scale, zero
	} else {
		w.Feat = m.Feat
	}
	return json.Marshal(w)
}

// QuantizedLogEntry is a LogEntry whose JSON form carries q8 feature
// payloads. It exists only as a marshal wrapper for the catch-up feed;
// decoding goes through the ordinary LogEntry, whose mutations accept
// both wire forms.
type QuantizedLogEntry struct {
	Version uint64       `json:"version"`
	Muts    []q8Mutation `json:"muts"`
}

// QuantizeLog wraps feed entries for q8 marshaling. The mutation slices
// are referenced, not copied.
func QuantizeLog(entries []LogEntry) []QuantizedLogEntry {
	out := make([]QuantizedLogEntry, len(entries))
	for i, e := range entries {
		muts := make([]q8Mutation, len(e.Muts))
		for j, m := range e.Muts {
			muts[j] = q8Mutation(m)
		}
		out[i] = QuantizedLogEntry{Version: e.Version, Muts: muts}
	}
	return out
}
