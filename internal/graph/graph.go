// Package graph provides the graph substrate: directed attributed graphs
// with node/edge tables (the inputs of GraphFlat), CSR adjacency, and TSV
// table I/O matching the paper's "node table + edge table" contract.
package graph

import (
	"fmt"
	"sort"

	"agl/internal/sparse"
)

// Node is one row of the node table.
type Node struct {
	ID   int64
	Feat []float64
}

// Edge is one row of the edge table: a directed edge Src→Dst with a weight
// and optional edge features.
type Edge struct {
	Src, Dst int64
	Weight   float64
	Feat     []float64
}

// Graph is an in-memory directed attributed graph. Node IDs are arbitrary
// int64s; Index maps them to dense [0,n) indices used by CSR adjacency.
//
// Self loops are dropped on construction: the GNN layers (GAT in
// particular) add their own self-attention term and must not double count.
type Graph struct {
	Nodes []Node
	Edges []Edge

	index map[int64]int
}

// Build constructs a Graph from node and edge rows. Edges referring to
// unknown nodes are an error; duplicate node IDs are an error; self loops
// are silently dropped; duplicate (src, dst) edges are merged by summing
// their weights so the graph is a simple weighted digraph — the contract
// every AGL pipeline (CSR adjacency, GraphFlat, GraphInfer) assumes.
func Build(nodes []Node, edges []Edge) (*Graph, error) {
	g := &Graph{Nodes: nodes, index: make(map[int64]int, len(nodes))}
	for i, n := range nodes {
		if _, dup := g.index[n.ID]; dup {
			return nil, fmt.Errorf("graph: duplicate node id %d", n.ID)
		}
		g.index[n.ID] = i
	}
	g.Edges = make([]Edge, 0, len(edges))
	pos := make(map[[2]int64]int, len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		if _, ok := g.index[e.Src]; !ok {
			return nil, fmt.Errorf("graph: edge source %d not in node table", e.Src)
		}
		if _, ok := g.index[e.Dst]; !ok {
			return nil, fmt.Errorf("graph: edge destination %d not in node table", e.Dst)
		}
		if e.Weight == 0 {
			e.Weight = 1
		}
		k := [2]int64{e.Src, e.Dst}
		if i, dup := pos[k]; dup {
			g.Edges[i].Weight += e.Weight
			continue
		}
		pos[k] = len(g.Edges)
		g.Edges = append(g.Edges, e)
	}
	return g, nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// FeatureDim returns the node feature dimensionality (0 for empty graphs).
func (g *Graph) FeatureDim() int {
	if len(g.Nodes) == 0 {
		return 0
	}
	return len(g.Nodes[0].Feat)
}

// Index returns the dense index of a node ID.
func (g *Graph) Index(id int64) (int, bool) {
	i, ok := g.index[id]
	return i, ok
}

// MustIndex returns the dense index of id, panicking when absent.
func (g *Graph) MustIndex(id int64) int {
	i, ok := g.index[id]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node id %d", id))
	}
	return i
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int64) (Node, bool) {
	if i, ok := g.index[id]; ok {
		return g.Nodes[i], true
	}
	return Node{}, false
}

// CSR builds the adjacency matrix with rows as destinations and columns as
// sources (A[v][u] = weight of edge u→v), the orientation used throughout
// AGL: a row gathers a node's in-edges.
func (g *Graph) CSR() *sparse.CSR {
	es := make([]sparse.Coo, 0, len(g.Edges))
	for _, e := range g.Edges {
		es = append(es, sparse.Coo{
			Row: g.index[e.Dst],
			Col: g.index[e.Src],
			Val: e.Weight,
		})
	}
	return sparse.NewCSR(len(g.Nodes), len(g.Nodes), es)
}

// InDegrees returns the (unweighted) in-degree of every node by dense index.
func (g *Graph) InDegrees() []int {
	deg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		deg[g.index[e.Dst]]++
	}
	return deg
}

// OutDegrees returns the (unweighted) out-degree of every node by dense index.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		deg[g.index[e.Src]]++
	}
	return deg
}

// AddReverseEdges returns a new graph with every edge mirrored (undirected
// semantics, paper §2.1: an undirected edge becomes two directed edges with
// the same features). Existing reverse edges are merged by NewCSR later, so
// duplicates are harmless but avoided here.
func (g *Graph) AddReverseEdges() (*Graph, error) {
	seen := make(map[[2]int64]bool, len(g.Edges)*2)
	for _, e := range g.Edges {
		seen[[2]int64{e.Src, e.Dst}] = true
	}
	edges := append([]Edge(nil), g.Edges...)
	for _, e := range g.Edges {
		if !seen[[2]int64{e.Dst, e.Src}] {
			edges = append(edges, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight, Feat: e.Feat})
			seen[[2]int64{e.Dst, e.Src}] = true
		}
	}
	return Build(g.Nodes, edges)
}

// IDs returns all node IDs in table order.
func (g *Graph) IDs() []int64 {
	out := make([]int64, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = n.ID
	}
	return out
}

// SortedIDs returns all node IDs in ascending order.
func (g *Graph) SortedIDs() []int64 {
	out := g.IDs()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes the graph for dataset tables.
type Stats struct {
	Nodes, Edges int
	FeatureDim   int
	MaxInDegree  int
	MeanInDegree float64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), FeatureDim: g.FeatureDim()}
	deg := g.InDegrees()
	var sum int
	for _, d := range deg {
		sum += d
		if d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	if len(deg) > 0 {
		s.MeanInDegree = float64(sum) / float64(len(deg))
	}
	return s
}
