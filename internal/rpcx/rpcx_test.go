package rpcx

import (
	"context"
	"errors"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoService is the test fixture: Echo succeeds, Fail returns an
// application error, Block parks until released (for deadline tests).
type echoService struct {
	mu       sync.Mutex
	release  chan struct{}
	blocking int
}

type EchoArgs struct{ S string }
type EchoReply struct{ S string }

func (e *echoService) Echo(args *EchoArgs, reply *EchoReply) error {
	reply.S = args.S
	return nil
}

func (e *echoService) Fail(args *EchoArgs, reply *EchoReply) error {
	return errors.New("app-level failure: " + args.S)
}

func (e *echoService) Block(args *EchoArgs, reply *EchoReply) error {
	e.mu.Lock()
	e.blocking++
	ch := e.release
	e.mu.Unlock()
	<-ch
	reply.S = "released"
	return nil
}

func startEcho(t *testing.T) (*Server, *echoService, string) {
	t.Helper()
	svc := &echoService{release: make(chan struct{})}
	srv := NewServer()
	if err := srv.Register("Echo", svc); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, svc, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	var reply EchoReply
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "hi"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.S != "hi" {
		t.Fatalf("reply = %q", reply.S)
	}
}

// TestPoolingReusesConnections: N sequential calls ride one TCP
// connection — the bug this package exists to fix was one dial per call.
func TestPoolingReusesConnections(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	for i := 0; i < 50; i++ {
		var reply EchoReply
		if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "x"}, &reply); err != nil {
			t.Fatal(err)
		}
	}
	if d := c.Dials(); d != 1 {
		t.Fatalf("50 sequential calls used %d dials, want 1", d)
	}
}

// TestAppErrorKeepsConnection: rpc.ServerError means the remote method
// failed, not the transport — the connection must go back to the pool.
func TestAppErrorKeepsConnection(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	for i := 0; i < 10; i++ {
		var reply EchoReply
		err := c.Call(context.Background(), "Echo.Fail", &EchoArgs{S: "boom"}, &reply)
		if err == nil {
			t.Fatal("Fail succeeded")
		}
		if _, ok := err.(rpc.ServerError); !ok {
			t.Fatalf("error type %T, want rpc.ServerError", err)
		}
		if !strings.Contains(err.Error(), "app-level failure: boom") {
			t.Fatalf("error = %v", err)
		}
	}
	if d := c.Dials(); d != 1 {
		t.Fatalf("app errors burned connections: %d dials", d)
	}
}

// TestDeadlinePropagation: a call against a parked method returns once the
// context deadline passes (the deadline reaches the socket), and the
// poisoned connection is not reused.
func TestDeadlinePropagation(t *testing.T) {
	_, svc, addr := startEcho(t)
	defer close(svc.release)
	c := NewClient(addr)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	var reply EchoReply
	err := c.Call(ctx, "Echo.Block", &EchoArgs{}, &reply)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("deadline not propagated: call took %v", el)
	}

	// The next call must work on a fresh connection.
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "after"}, &reply); err != nil {
		t.Fatal(err)
	}
	if d := c.Dials(); d != 2 {
		t.Fatalf("dials = %d, want 2 (timed-out conn discarded)", d)
	}
}

// TestCancellationAbortsInFlight: cancel (not deadline) unblocks a parked
// call promptly.
func TestCancellationAbortsInFlight(t *testing.T) {
	_, svc, addr := startEcho(t)
	defer close(svc.release)
	c := NewClient(addr)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		var reply EchoReply
		done <- c.Call(ctx, "Echo.Block", &EchoArgs{}, &reply)
	}()
	// Wait for the call to actually park server-side, then cancel.
	for i := 0; i < 200; i++ {
		svc.mu.Lock()
		b := svc.blocking
		svc.mu.Unlock()
		if b > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the call")
	}
}

// TestPreCancelledContext short-circuits without touching the network.
func TestPreCancelledContext(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens here
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var reply EchoReply
	if err := c.Call(ctx, "Echo.Echo", &EchoArgs{}, &reply); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if c.Dials() != 0 {
		t.Fatal("dialed despite cancelled context")
	}
}

func TestClientClose(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	var reply EchoReply
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "x"}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "x"}, &reply); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after Close: %v, want ErrClosed", err)
	}
}

// TestServerCloseSeversConnections: Close severs live connections (so
// blocked clients unblock immediately) and then drains: it returns only
// once every handler goroutine has finished — net/rpc cannot preempt a
// running handler, so the parked one must be released for Close to drain.
func TestServerCloseSeversConnections(t *testing.T) {
	srv, svc, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		var reply EchoReply
		done <- c.Call(context.Background(), "Echo.Block", &EchoArgs{}, &reply)
	}()
	for i := 0; i < 200; i++ {
		svc.mu.Lock()
		b := svc.blocking
		svc.mu.Unlock()
		if b > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	closeDone := make(chan struct{})
	go func() { srv.Close(); close(closeDone) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call survived server shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close left the client hanging")
	}
	close(svc.release) // let the parked handler return so Close can drain
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain after handlers returned")
	}
	// The port must actually be released.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	l.Close()
}

// TestConcurrentCallsBoundedPool: heavy concurrency works and the idle
// pool stays bounded afterwards.
func TestConcurrentCallsBoundedPool(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				var reply EchoReply
				if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "c"}, &reply); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c.mu.Lock()
	idle := len(c.idle)
	c.mu.Unlock()
	if idle > maxIdle {
		t.Fatalf("idle pool %d exceeds bound %d", idle, maxIdle)
	}
}
