package rpcx

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/rpc"
	"time"

	"agl/internal/clockx"
)

// This file is the client-side resilience layer: typed transport errors,
// a per-peer circuit breaker so a dead peer costs one cooldown rather
// than one dial timeout per request, and jittered exponential-backoff
// retries for idempotent calls. The breaker is opt-in (SetBreaker);
// plain Call semantics are unchanged for clients that never enable it.

// ErrPeerDown is the sentinel matched by errors.Is when a call fails
// fast because the peer is considered down (circuit breaker open) or
// retries against it were exhausted. The concrete error in the chain is
// a *PeerDownError carrying the address and a retry hint.
var ErrPeerDown = errors.New("rpcx: peer down")

// PeerDownError reports a peer the client has given up on for now.
// RetryAfter is the caller-facing hint (how long until the breaker
// half-opens); HTTP edges surface it as a Retry-After header on a 503.
type PeerDownError struct {
	Addr       string
	RetryAfter time.Duration
	Err        error
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("rpcx: peer %s down (retry after %s): %v", e.Addr, e.RetryAfter, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *PeerDownError) Unwrap() error { return e.Err }

// Is matches the ErrPeerDown sentinel.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// TransportError is a dial or stream-level failure — the class of error
// that poisons a connection and (unlike rpc.ServerError) says nothing
// was necessarily executed remotely. Only this class is retried by
// CallIdempotent and counted by the circuit breaker.
type TransportError struct {
	Addr   string
	Method string // empty for dial failures
	Err    error
}

func (e *TransportError) Error() string {
	if e.Method == "" {
		return fmt.Sprintf("rpcx: dial %s: %v", e.Addr, e.Err)
	}
	return fmt.Sprintf("rpcx: call %s on %s: %v", e.Method, e.Addr, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err contains a TransportError.
func IsTransport(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// Breaker defaults, used by SetBreaker callers that have no opinion.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
)

// Retry schedule for CallIdempotent: up to retryAttempts total tries,
// sleeping a jittered exponential backoff between them.
const (
	retryAttempts = 3
	retryBase     = 10 * time.Millisecond
)

// SetBreaker enables the per-peer circuit breaker: threshold consecutive
// transport failures open it for cooldown, during which every Call fails
// fast with a *PeerDownError instead of paying a dial timeout. After the
// cooldown one probe call is admitted (half-open); success closes the
// breaker, failure re-opens it. threshold <= 0 disables (the default).
func (c *Client) SetBreaker(threshold int, cooldown time.Duration) {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	c.bThreshold = threshold
	c.bCooldown = cooldown
}

// SetClock injects the time source used by breaker cooldowns and retry
// backoff (tests pass a clockx.Fake). Call before the first Call.
func (c *Client) SetClock(clk clockx.Clock) {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	c.clk = clk
}

// Retries reports how many backoff retries CallIdempotent has performed —
// the proxied-read resilience observable.
func (c *Client) Retries() int64 { return c.retries.Load() }

// BreakerOpens reports how many times the breaker transitioned to open
// (re-opens after a failed probe count).
func (c *Client) BreakerOpens() int64 { return c.bOpensN.Load() }

// BreakerOpen reports whether calls would currently fail fast.
func (c *Client) BreakerOpen() bool {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.bThreshold <= 0 || c.bOpenUntil.IsZero() {
		return false
	}
	return c.clock().Now().Before(c.bOpenUntil)
}

// clock returns the injected clock, defaulting to the real one. Callers
// hold c.bmu.
func (c *Client) clock() clockx.Clock {
	if c.clk == nil {
		c.clk = clockx.Real{}
	}
	return c.clk
}

// breakerAllow gates a call: nil means proceed (and, in the half-open
// state, marks this call as the probe).
func (c *Client) breakerAllow() error {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.bThreshold <= 0 || c.bOpenUntil.IsZero() {
		return nil
	}
	now := c.clock().Now()
	if now.Before(c.bOpenUntil) {
		return &PeerDownError{
			Addr:       c.addr,
			RetryAfter: c.bOpenUntil.Sub(now),
			Err:        fmt.Errorf("circuit open after %d consecutive transport failures", c.bFails),
		}
	}
	// Cooldown elapsed: half-open. Admit exactly one probe; everyone
	// else keeps failing fast until the probe resolves.
	if c.bProbing {
		return &PeerDownError{
			Addr:       c.addr,
			RetryAfter: c.bCooldown,
			Err:        errors.New("half-open probe in flight"),
		}
	}
	c.bProbing = true
	return nil
}

// breakerRecord folds a call outcome into the breaker state. Transport
// failures count against the peer; success and rpc.ServerError (the
// peer answered — it is alive) reset it; the caller's own context
// cancellation is neutral.
func (c *Client) breakerRecord(err error) {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.bThreshold <= 0 {
		return
	}
	c.bProbing = false
	var te *TransportError
	switch {
	case err == nil:
		c.bFails = 0
		c.bOpenUntil = time.Time{}
	case errors.As(err, &te) && !errors.Is(err, context.Canceled):
		c.bFails++
		if c.bFails >= c.bThreshold {
			c.bOpenUntil = c.clock().Now().Add(c.bCooldown)
			c.bOpensN.Add(1)
		}
	default:
		if _, ok := err.(rpc.ServerError); ok {
			c.bFails = 0
			c.bOpenUntil = time.Time{}
		}
		// Context errors: neutral. The peer was never proven dead.
	}
}

// CallIdempotent is Call plus jittered exponential-backoff retries for
// transport-class failures — safe only for idempotent methods (reads,
// table exchange, heartbeats). Application errors (rpc.ServerError),
// context errors, and an open breaker are returned immediately; a call
// whose retries are exhausted returns a *PeerDownError wrapping the last
// transport error, so callers and HTTP edges can treat "peer
// unreachable" uniformly via errors.Is(err, ErrPeerDown).
func (c *Client) CallIdempotent(ctx context.Context, serviceMethod string, args, reply any) error {
	var err error
	backoff := retryBase
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if serr := c.sleepCtx(ctx, c.jitter(backoff)); serr != nil {
				return serr
			}
			backoff *= 2
		}
		err = c.Call(ctx, serviceMethod, args, reply)
		if err == nil {
			return nil
		}
		if !IsTransport(err) || errors.Is(err, context.DeadlineExceeded) {
			// Server-side error, caller cancellation, our own deadline,
			// or an already-typed PeerDownError: retrying cannot help.
			return err
		}
	}
	return &PeerDownError{Addr: c.addr, RetryAfter: c.retryAfterHint(), Err: err}
}

// retryAfterHint suggests how long a caller should wait before trying
// this peer again: the breaker cooldown remainder when open, else the
// default cooldown.
func (c *Client) retryAfterHint() time.Duration {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.bThreshold > 0 && !c.bOpenUntil.IsZero() {
		if rem := c.bOpenUntil.Sub(c.clock().Now()); rem > 0 {
			return rem
		}
	}
	if c.bCooldown > 0 {
		return c.bCooldown
	}
	return DefaultBreakerCooldown
}

// jitter spreads d over [d/2, d) so synchronized retriers decorrelate.
// The draw comes from a per-client seeded source (deterministic per
// address), guarded by its own mutex.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rngV == nil {
		var seed int64 = 0x9E3779B9
		for _, b := range []byte(c.addr) {
			seed = seed*131 + int64(b)
		}
		c.rngV = rand.New(rand.NewSource(seed))
	}
	half := d / 2
	return half + time.Duration(c.rngV.Int63n(int64(half)))
}

// sleepCtx sleeps d on the injected clock, aborting early if ctx ends.
func (c *Client) sleepCtx(ctx context.Context, d time.Duration) error {
	c.bmu.Lock()
	clk := c.clock()
	c.bmu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	done := make(chan struct{})
	t := clk.AfterFunc(d, func() { close(done) })
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}
