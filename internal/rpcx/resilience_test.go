package rpcx

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"agl/internal/clockx"
)

// deadAddr returns an address nothing listens on (bound then released,
// so the port was recently free and connects are refused fast).
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestBreakerOpensAndFailsFast: after threshold consecutive transport
// failures the breaker opens and subsequent calls return PeerDownError
// without dialing; after the cooldown a probe is admitted.
func TestBreakerOpensAndFailsFast(t *testing.T) {
	addr := deadAddr(t)
	c := NewClient(addr)
	defer c.Close()
	clk := clockx.NewFake()
	c.SetClock(clk)
	c.SetBreaker(3, time.Second)

	ctx := context.Background()
	var reply EchoReply
	for i := 0; i < 3; i++ {
		err := c.Call(ctx, "Echo.Echo", &EchoArgs{S: "x"}, &reply)
		if !IsTransport(err) {
			t.Fatalf("call %d: want transport error, got %v", i, err)
		}
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker should be open after 3 transport failures")
	}
	if got := c.BreakerOpens(); got != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", got)
	}

	dialsBefore := c.Dials()
	err := c.Call(ctx, "Echo.Echo", &EchoArgs{S: "x"}, &reply)
	var pd *PeerDownError
	if !errors.As(err, &pd) || !errors.Is(err, ErrPeerDown) {
		t.Fatalf("open breaker: want PeerDownError, got %v", err)
	}
	if pd.Addr != addr || pd.RetryAfter <= 0 {
		t.Fatalf("PeerDownError = %+v", pd)
	}
	if c.Dials() != dialsBefore {
		t.Fatal("open breaker dialed anyway")
	}

	// Cooldown elapses; a server appears at the same address; the probe
	// succeeds and closes the breaker.
	clk.Advance(2 * time.Second)
	srv := NewServer()
	if err := srv.Register("Echo", &echoService{release: make(chan struct{})}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(addr); err != nil {
		t.Skipf("port %s re-bind raced: %v", addr, err) // rare, environment-dependent
	}
	defer srv.Close()
	if err := c.Call(ctx, "Echo.Echo", &EchoArgs{S: "probe"}, &reply); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if c.BreakerOpen() {
		t.Fatal("breaker should close after successful probe")
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe re-opens the
// breaker for another full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	addr := deadAddr(t)
	c := NewClient(addr)
	defer c.Close()
	clk := clockx.NewFake()
	c.SetClock(clk)
	c.SetBreaker(2, time.Second)

	ctx := context.Background()
	var reply EchoReply
	for i := 0; i < 2; i++ {
		c.Call(ctx, "Echo.Echo", &EchoArgs{S: "x"}, &reply)
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker not open")
	}
	clk.Advance(1500 * time.Millisecond)
	// Probe (still no listener) fails; breaker re-opens.
	if err := c.Call(ctx, "Echo.Echo", &EchoArgs{S: "x"}, &reply); !IsTransport(err) {
		t.Fatalf("probe: want transport error, got %v", err)
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker should re-open after failed probe")
	}
	if got := c.BreakerOpens(); got != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 (open + reopen)", got)
	}
}

// TestServerErrorDoesNotTripBreaker: application errors prove the peer
// is alive; the breaker must not count them.
func TestServerErrorDoesNotTripBreaker(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	c.SetBreaker(2, time.Second)
	var reply EchoReply
	for i := 0; i < 10; i++ {
		err := c.Call(context.Background(), "Echo.Fail", &EchoArgs{S: "x"}, &reply)
		if err == nil || IsTransport(err) {
			t.Fatalf("want app error, got %v", err)
		}
	}
	if c.BreakerOpen() {
		t.Fatal("application errors tripped the breaker")
	}
}

// TestCallIdempotentRetriesThroughChaos: with a 60% drop policy,
// CallIdempotent's backoff retries still land the call (seeded chaos →
// deterministic schedule), and the retry counter moves.
func TestCallIdempotentRetriesThroughChaos(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	ch := NewChaos(42)
	ch.Set(addr, ChaosPolicy{Drop: 0.6})
	c.SetChaos(ch)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ok := 0
	for i := 0; i < 20; i++ {
		var reply EchoReply
		if err := c.CallIdempotent(ctx, "Echo.Echo", &EchoArgs{S: "r"}, &reply); err == nil {
			if reply.S != "r" {
				t.Fatalf("reply = %q", reply.S)
			}
			ok++
		} else if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	// P(all 3 attempts dropped) = 0.216, so most of the 20 succeed.
	if ok < 10 {
		t.Fatalf("only %d/20 idempotent calls landed under 60%% drop", ok)
	}
	if c.Retries() == 0 {
		t.Fatal("no retries recorded under 60% drop")
	}
	if ch.Injected() == 0 {
		t.Fatal("chaos recorded no injected faults")
	}
}

// TestCallIdempotentExhaustionTypesPeerDown: against a dead peer,
// retries exhaust and the caller gets a typed PeerDownError.
func TestCallIdempotentExhaustionTypesPeerDown(t *testing.T) {
	c := NewClient(deadAddr(t))
	defer c.Close()
	var reply EchoReply
	err := c.CallIdempotent(context.Background(), "Echo.Echo", &EchoArgs{S: "x"}, &reply)
	var pd *PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("want PeerDownError after exhaustion, got %v", err)
	}
	if pd.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", pd.RetryAfter)
	}
}

// TestCallIdempotentDoesNotRetryAppErrors: rpc.ServerError returns
// immediately — retrying a failing method is wasted work and the method
// may not be idempotent at the application level.
func TestCallIdempotentDoesNotRetryAppErrors(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	var reply EchoReply
	err := c.CallIdempotent(context.Background(), "Echo.Fail", &EchoArgs{S: "x"}, &reply)
	if err == nil || IsTransport(err) {
		t.Fatalf("want app error, got %v", err)
	}
	if c.Retries() != 0 {
		t.Fatalf("app error was retried %d times", c.Retries())
	}
}

// TestChaosDeterministic: two chaos tables with the same seed produce
// the same drop schedule for the same call sequence.
func TestChaosDeterministic(t *testing.T) {
	seq := func() []bool {
		ch := NewChaos(7)
		ch.Set("a", ChaosPolicy{Drop: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = ch.decide("a").drop
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
}

// TestChaosPartitionTripsBreaker: a partition policy plus breaker means
// calls fail fast after threshold — the e2e chaos wiring in one unit.
func TestChaosPartitionTripsBreaker(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	clk := clockx.NewFake()
	c.SetClock(clk)
	c.SetBreaker(3, time.Second)
	ch := NewChaos(1)
	ch.Set(addr, ChaosPolicy{Partition: true})
	c.SetChaos(ch)

	var reply EchoReply
	for i := 0; i < 3; i++ {
		if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "x"}, &reply); !IsTransport(err) {
			t.Fatalf("partitioned call %d: %v", i, err)
		}
	}
	if !c.BreakerOpen() {
		t.Fatal("partition did not trip breaker")
	}
	// Heal + cooldown: traffic flows again.
	ch.Clear()
	clk.Advance(2 * time.Second)
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "back"}, &reply); err != nil {
		t.Fatalf("post-heal call: %v", err)
	}
}

// TestChaosDuplicateDelivery: duplicated idempotent calls still return
// one correct answer (and the server simply sees the method twice).
func TestChaosDuplicateDelivery(t *testing.T) {
	_, _, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()
	ch := NewChaos(3)
	ch.Set(addr, ChaosPolicy{Duplicate: 1.0})
	c.SetChaos(ch)
	var reply EchoReply
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "dup"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.S != "dup" {
		t.Fatalf("reply = %q", reply.S)
	}
}

// --- pool edge cases under -race (satellite) ---

// TestPoolDiscardsConnAfterTransportError: a conn that saw a transport
// error must not be returned to the idle pool — the next call dials
// fresh instead of inheriting a poisoned stream.
func TestPoolDiscardsConnAfterTransportError(t *testing.T) {
	srv, svc, addr := startEcho(t)
	// Release the parked Block handler before the fixture's srv.Close
	// cleanup runs (net/rpc's ServeConn waits for in-flight calls).
	t.Cleanup(func() { close(svc.release) })
	c := NewClient(addr)
	defer c.Close()
	var reply EchoReply
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "a"}, &reply); err != nil {
		t.Fatal(err)
	}
	d0 := c.Dials()

	// Park a call server-side (it rides the pooled conn), then sever the
	// server's accepted conns: the parked call dies with a transport
	// error and its conn must be discarded, not returned to the pool.
	done := make(chan error, 1)
	go func() {
		var r EchoReply
		done <- c.Call(context.Background(), "Echo.Block", &EchoArgs{S: "b"}, &r)
	}()
	waitUntil(t, func() bool { svc.mu.Lock(); defer svc.mu.Unlock(); return svc.blocking > 0 })
	srv.mu.Lock()
	for cn := range srv.conns {
		cn.Close()
	}
	srv.mu.Unlock()
	if err := <-done; !IsTransport(err) {
		t.Fatalf("severed call: want transport error, got %v", err)
	}

	// The server still listens; the next call must dial fresh because
	// the poisoned conn was discarded and the pool is empty.
	if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "c"}, &reply); err != nil {
		t.Fatal(err)
	}
	if c.Dials() != d0+1 {
		t.Fatalf("dials %d -> %d, want exactly one fresh dial", d0, c.Dials())
	}
}

// TestPoolExhaustionDialsAndCaps: concurrency far above maxIdle works
// (every excess call dials) and the steady-state pool retains at most
// maxIdle conns — sequential traffic afterwards does not dial again.
func TestPoolExhaustionDialsAndCaps(t *testing.T) {
	_, svc, addr := startEcho(t)
	c := NewClient(addr)
	defer c.Close()

	const n = 4 * maxIdle
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var r EchoReply
			errs <- c.Call(context.Background(), "Echo.Block", &EchoArgs{S: "x"}, &r)
		}()
	}
	waitUntil(t, func() bool { svc.mu.Lock(); defer svc.mu.Unlock(); return svc.blocking == n })
	if got := c.Dials(); got != n {
		t.Fatalf("dials = %d, want %d (one per concurrent call)", got, n)
	}
	close(svc.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	c.mu.Lock()
	idle := len(c.idle)
	c.mu.Unlock()
	if idle > maxIdle {
		t.Fatalf("idle pool = %d, cap is %d", idle, maxIdle)
	}
	// Steady state: sequential calls ride the retained conns.
	before := c.Dials()
	for i := 0; i < 2*maxIdle; i++ {
		var r EchoReply
		if err := c.Call(context.Background(), "Echo.Echo", &EchoArgs{S: "y"}, &r); err != nil {
			t.Fatal(err)
		}
	}
	if c.Dials() != before {
		t.Fatalf("steady-state traffic dialed (%d -> %d)", before, c.Dials())
	}
}

// TestCancelMidDial: cancelling the context while the dial is in
// flight returns the context error (not a typed transport error — the
// caller gave up, the peer was never proven dead) and trips nothing.
func TestCancelMidDial(t *testing.T) {
	// A listener with an un-drained backlog: fill it so further connects
	// hang in SYN queue, then dial with a cancelling context.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Saturate the accept backlog with raw conns nobody accepts.
	var hold []net.Conn
	defer func() {
		for _, cn := range hold {
			cn.Close()
		}
	}()
	for i := 0; i < 512; i++ {
		cn, err := net.DialTimeout("tcp", l.Addr().String(), 50*time.Millisecond)
		if err != nil {
			break // backlog full — what we want
		}
		hold = append(hold, cn)
	}

	c := NewClient(l.Addr().String())
	defer c.Close()
	c.SetBreaker(1, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		var r EchoReply
		done <- c.Call(ctx, "Echo.Echo", &EchoArgs{S: "x"}, &r)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// Loopback dials usually complete instantly even with a full
		// backlog, in which case the call proceeds past the dial and
		// aborts with context.Canceled from the in-flight path — both
		// exits must surface the context error, never a transport one.
		if !errors.Is(err, context.Canceled) && err != nil {
			t.Fatalf("cancelled call: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled dial never returned")
	}
	if c.BreakerOpen() {
		t.Fatal("caller cancellation tripped the breaker")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
