package rpcx

import (
	"math/rand"
	"sync"
	"time"
)

// Chaos is the fault-injection hook: a seeded, deterministic policy
// table keyed by peer address, shared across the clients of one process
// and consulted at the top of every Call. It simulates the failure
// modes a real cluster sees — dropped requests, added latency, a full
// partition, duplicate delivery — without touching the network stack,
// so the same schedule replays exactly under a fixed seed.
//
// Injected failures surface as ordinary *TransportError values: they
// poison nothing (no real conn was involved) but count against the
// circuit breaker and are retried by CallIdempotent exactly like real
// ones, which is the point.
type Chaos struct {
	mu       sync.Mutex
	rng      *rand.Rand
	policies map[string]ChaosPolicy
	injected int64 // faults injected (drops + partitions), an observable
}

// ChaosPolicy is the per-peer fault mix. Zero value = no faults.
type ChaosPolicy struct {
	// Drop is the probability in [0,1] that a call fails with a
	// simulated transport error before anything is sent.
	Drop float64
	// Partition fails every call to the peer (Drop = 1 with a clearer
	// intent in the error text).
	Partition bool
	// Delay adds fixed latency before the call; DelayJitter adds a
	// uniform random extra in [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration
	// Duplicate is the probability that a successful call is sent a
	// second time (result discarded) — duplicate-delivery tolerance.
	Duplicate float64
}

// NewChaos returns a chaos table with a deterministic seeded source.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		rng:      rand.New(rand.NewSource(seed)),
		policies: make(map[string]ChaosPolicy),
	}
}

// Set installs (or replaces) the policy for addr.
func (c *Chaos) Set(addr string, p ChaosPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policies[addr] = p
}

// Clear removes every policy (heal the network).
func (c *Chaos) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policies = make(map[string]ChaosPolicy)
}

// Injected reports how many faults (drops and partition rejections)
// have fired so far.
func (c *Chaos) Injected() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// chaosDecision is what a single Call draws from the table.
type chaosDecision struct {
	drop      bool
	partition bool
	delay     time.Duration
	duplicate bool
}

// decide draws this call's fate for addr. All randomness happens here,
// under one lock, off one source — deterministic given the seed and the
// sequence of calls.
func (c *Chaos) decide(addr string) chaosDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.policies[addr]
	if !ok {
		return chaosDecision{}
	}
	var d chaosDecision
	if p.Partition {
		d.partition = true
		c.injected++
		return d
	}
	if p.Drop > 0 && c.rng.Float64() < p.Drop {
		d.drop = true
		c.injected++
		return d
	}
	d.delay = p.Delay
	if p.DelayJitter > 0 {
		d.delay += time.Duration(c.rng.Int63n(int64(p.DelayJitter)))
	}
	if p.Duplicate > 0 && c.rng.Float64() < p.Duplicate {
		d.duplicate = true
	}
	return d
}

// SetChaos installs (or removes, with nil) the chaos table consulted by
// this client's calls. Safe to flip at runtime.
func (c *Client) SetChaos(ch *Chaos) {
	c.chaosMu.Lock()
	c.chaos = ch
	c.chaosMu.Unlock()
}

func (c *Client) chaosTable() *Chaos {
	c.chaosMu.Lock()
	defer c.chaosMu.Unlock()
	return c.chaos
}
