// Package rpcx is the repo's internal RPC substrate: net/rpc + gob over
// loopback/datacenter TCP, wrapped with the two things raw net/rpc lacks
// for production use — pooled context-aware clients with deadline
// propagation, and servers that track their connections so shutdown
// actually closes them.
//
// It was extracted from internal/ps (which re-dialed per worker and leaked
// accepted conns on shutdown) and is shared by the parameter-server layer
// and the sharded serving tier's replica-to-replica calls.
//
// Error semantics across a Call: an application-level error returned by
// the remote method arrives as rpc.ServerError and leaves the connection
// healthy (it is returned to the pool); any transport error — dial
// failure, i/o timeout from a context deadline, broken pipe — discards
// the connection. Context cancellation aborts an in-flight call by
// closing its connection; the pooled idle connections are untouched.
package rpcx

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"agl/internal/clockx"
)

// ErrClosed is returned by calls on a Client or Server after Close.
var ErrClosed = errors.New("rpcx: closed")

// maxIdle bounds the per-address idle pool; connections beyond it are
// closed on release rather than retained. Concurrency above maxIdle still
// works — excess calls dial — but steady state keeps at most this many
// sockets per peer.
const maxIdle = 4

// Client is a pooled RPC client for one remote address. It is safe for
// concurrent use; each in-flight call owns one pooled connection
// exclusively, so net.Conn deadlines apply per call.
type Client struct {
	addr string

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	dials   atomic.Int64
	retries atomic.Int64

	// Circuit breaker (resilience.go). Disabled until SetBreaker.
	bmu        sync.Mutex
	bThreshold int
	bCooldown  time.Duration
	bFails     int
	bOpenUntil time.Time
	bProbing   bool
	bOpensN    atomic.Int64
	clk        clockx.Clock

	// Seeded jitter source for retry backoff (resilience.go).
	rngMu sync.Mutex
	rngV  *rand.Rand

	// Fault injection (chaos.go). Nil in production.
	chaosMu sync.Mutex
	chaos   *Chaos
}

type clientConn struct {
	nc net.Conn
	rc *rpc.Client
}

// NewClient returns a client for addr. No connection is made until the
// first Call (so constructing clients for not-yet-listening peers is
// fine).
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Addr returns the remote address this client dials.
func (c *Client) Addr() string { return c.addr }

// Dials reports how many TCP connections this client has opened — the
// pooling observable (N sequential calls should cost 1 dial, not N).
func (c *Client) Dials() int64 { return c.dials.Load() }

// Call invokes serviceMethod remotely, honoring ctx: its deadline is
// pushed down onto the connection (the remote side also receives it via
// whatever args encode), and cancellation aborts the call by closing the
// connection it occupies.
//
// When a circuit breaker is enabled (SetBreaker) an open breaker fails
// fast with a *PeerDownError; when a chaos table is installed
// (SetChaos) the call may be dropped, delayed, or duplicated first.
func (c *Client) Call(ctx context.Context, serviceMethod string, args, reply any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := c.breakerAllow(); err != nil {
		return err
	}
	var dup bool
	if ch := c.chaosTable(); ch != nil {
		d := ch.decide(c.addr)
		switch {
		case d.partition:
			err := &TransportError{Addr: c.addr, Method: serviceMethod,
				Err: errors.New("chaos: partitioned")}
			c.breakerRecord(err)
			return err
		case d.drop:
			err := &TransportError{Addr: c.addr, Method: serviceMethod,
				Err: errors.New("chaos: dropped")}
			c.breakerRecord(err)
			return err
		}
		if d.delay > 0 {
			if serr := c.sleepCtx(ctx, d.delay); serr != nil {
				return serr
			}
		}
		dup = d.duplicate
	}
	err := c.callOnce(ctx, serviceMethod, args, reply)
	c.breakerRecord(err)
	if err == nil && dup {
		// Duplicate delivery: send the same call again and discard the
		// outcome — the first answer already stands.
		_ = c.callOnce(ctx, serviceMethod, args, reply)
	}
	return err
}

func (c *Client) callOnce(ctx context.Context, serviceMethod string, args, reply any) error {
	cn, err := c.get(ctx)
	if err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok {
		cn.nc.SetDeadline(dl)
	}
	call := cn.rc.Go(serviceMethod, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		// Abort: closing the conn fails the pending read and unblocks Go's
		// call; wait for it so nothing races on reply.
		cn.nc.Close()
		<-call.Done
		cn.rc.Close()
		return ctx.Err()
	case <-call.Done:
	}
	if call.Error == nil {
		cn.nc.SetDeadline(time.Time{})
		c.put(cn)
		return nil
	}
	if _, ok := call.Error.(rpc.ServerError); ok {
		// The remote method returned an error; the stream itself is fine.
		cn.nc.SetDeadline(time.Time{})
		c.put(cn)
		return call.Error
	}
	// Transport-level failure: the connection is poisoned.
	cn.nc.Close()
	cn.rc.Close()
	if cerr := ctx.Err(); cerr != nil {
		// An i/o timeout caused by our own deadline reads better as the
		// context error the caller can errors.Is against.
		return cerr
	}
	var ne net.Error
	if errors.As(call.Error, &ne) && ne.Timeout() {
		// The only deadline ever set on the socket is the ctx deadline
		// pushed above, so a timeout IS the deadline expiring — but the
		// socket's poller timer can fire a beat before the context's own
		// timer goroutine flips ctx.Err() non-nil. Map it explicitly so
		// callers never see a raw i/o timeout from their own deadline.
		return &TransportError{Addr: c.addr, Method: serviceMethod, Err: context.DeadlineExceeded}
	}
	return &TransportError{Addr: c.addr, Method: serviceMethod, Err: call.Error}
}

func (c *Client) get(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()

	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// Cancellation mid-dial is the caller's doing, not the
			// peer's: surface the context error, untyped.
			return nil, cerr
		}
		return nil, &TransportError{Addr: c.addr, Err: err}
	}
	c.dials.Add(1)
	return &clientConn{nc: nc, rc: rpc.NewClient(nc)}, nil
}

func (c *Client) put(cn *clientConn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= maxIdle {
		c.mu.Unlock()
		cn.rc.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// Close shuts the client: idle connections are closed now, in-flight ones
// as their calls finish. Subsequent Calls return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cn := range idle {
		cn.rc.Close()
	}
	return nil
}

// Server wraps rpc.Server with a tracked accept loop: Close tears down the
// listener AND every accepted connection, then waits for the per-conn
// goroutines — no leaked sockets, no goroutines past shutdown.
type Server struct {
	rs *rpc.Server

	mu       sync.Mutex
	l        net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
}

// NewServer returns an empty server; Register services, then Listen.
func NewServer() *Server {
	return &Server{rs: rpc.NewServer(), conns: make(map[net.Conn]struct{})}
}

// Register publishes rcvr's exported methods under name.
func (s *Server) Register(name string, rcvr any) error {
	return s.rs.RegisterName(name, rcvr)
}

// Listen binds addr (use "127.0.0.1:0" for an ephemeral loopback port) and
// starts the accept loop. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", ErrClosed
	}
	s.l = l
	s.mu.Unlock()

	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.connWG.Add(1)
			s.mu.Unlock()
			go func(conn net.Conn) {
				defer s.connWG.Done()
				s.rs.ServeConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}(conn)
		}
	}()
	return l.Addr().String(), nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.l == nil {
		return ""
	}
	return s.l.Addr().String()
}

// Close stops accepting, severs every live connection, and waits for all
// serving goroutines to exit. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.l
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.acceptWG.Wait()
	s.connWG.Wait()
	return nil
}
