// Package nn is the neural-network substrate beneath AGL's GNN models:
// named parameters, dense layers, activations, dropout, classification
// losses, SGD/Adam optimizers, and finite-difference gradient checking.
//
// The package deliberately avoids a tape-based autodiff engine: GNN models
// are fixed stacks of layers with hand-derived backward passes, which is
// both faster and easier to ship onto a parameter server where gradients
// travel as named dense tensors.
package nn

import (
	"fmt"
	"math/rand"
	"sort"

	"agl/internal/tensor"
)

// Param is a trainable parameter: a named dense matrix with an accumulated
// gradient of the same shape. Names are globally unique within a model and
// are the keys used by the parameter server.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a zeroed rows×cols parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// GlorotParam allocates a parameter with Glorot-uniform initialization.
func GlorotParam(name string, rows, cols int, rng *rand.Rand) *Param {
	p := NewParam(name, rows, cols)
	p.W.GlorotFill(rng)
	return p
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Clone returns a deep copy of the parameter (weights and gradient).
func (p *Param) Clone() *Param {
	return &Param{Name: p.Name, W: p.W.Clone(), Grad: p.Grad.Clone()}
}

// ParamSet is an ordered collection of parameters with unique names.
type ParamSet struct {
	byName map[string]*Param
	order  []string
}

// NewParamSet builds a set from params; duplicate names panic.
func NewParamSet(params ...*Param) *ParamSet {
	s := &ParamSet{byName: make(map[string]*Param)}
	for _, p := range params {
		s.Add(p)
	}
	return s
}

// Add inserts p; a duplicate name panics since it indicates a model bug.
func (s *ParamSet) Add(p *Param) {
	if _, ok := s.byName[p.Name]; ok {
		panic(fmt.Sprintf("nn: duplicate parameter %q", p.Name))
	}
	s.byName[p.Name] = p
	s.order = append(s.order, p.Name)
}

// Get returns the parameter with the given name, or nil.
func (s *ParamSet) Get(name string) *Param { return s.byName[name] }

// Names returns parameter names in insertion order.
func (s *ParamSet) Names() []string { return append([]string(nil), s.order...) }

// List returns parameters in insertion order.
func (s *ParamSet) List() []*Param {
	out := make([]*Param, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.byName[n])
	}
	return out
}

// Len returns the number of parameters.
func (s *ParamSet) Len() int { return len(s.order) }

// ZeroGrads clears every parameter's gradient.
func (s *ParamSet) ZeroGrads() {
	for _, p := range s.byName {
		p.ZeroGrad()
	}
}

// NumValues returns the total number of scalar weights in the set.
func (s *ParamSet) NumValues() int {
	n := 0
	for _, p := range s.byName {
		n += len(p.W.Data)
	}
	return n
}

// CopyWeightsFrom overwrites this set's weights with src's, matched by name.
// Parameters present in only one set are an error.
func (s *ParamSet) CopyWeightsFrom(src *ParamSet) error {
	if s.Len() != src.Len() {
		return fmt.Errorf("nn: param set size mismatch %d vs %d", s.Len(), src.Len())
	}
	for name, p := range s.byName {
		q := src.Get(name)
		if q == nil {
			return fmt.Errorf("nn: missing parameter %q in source", name)
		}
		if q.W.Rows != p.W.Rows || q.W.Cols != p.W.Cols {
			return fmt.Errorf("nn: parameter %q shape mismatch", name)
		}
		p.W.CopyFrom(q.W)
	}
	return nil
}

// SortedNames returns parameter names sorted lexicographically; handy for
// deterministic serialization.
func (s *ParamSet) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
