package nn

import (
	"math"

	"agl/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters. Implementations
// keep per-parameter state keyed by name so the same optimizer instance can
// live on a parameter-server shard and receive pushed gradients.
type Optimizer interface {
	// Step applies p.Grad to p.W and leaves the gradient untouched;
	// callers decide when to zero gradients.
	Step(p *Param)
	// StepAll applies Step to every parameter in the set.
	StepAll(s *ParamSet)
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[string]*tensor.Matrix
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD {
	return &SGD{LR: lr, velocity: make(map[string]*tensor.Matrix)}
}

// Step implements Optimizer.
func (o *SGD) Step(p *Param) {
	g := p.Grad
	if o.WeightDecay != 0 {
		g = g.Clone()
		tensor.AXPY(g, o.WeightDecay, p.W)
	}
	if o.Momentum != 0 {
		if o.velocity == nil {
			o.velocity = make(map[string]*tensor.Matrix)
		}
		v, ok := o.velocity[p.Name]
		if !ok {
			v = tensor.New(p.W.Rows, p.W.Cols)
			o.velocity[p.Name] = v
		}
		v.Scale(o.Momentum)
		tensor.AXPY(v, 1, g)
		g = v
	}
	tensor.AXPY(p.W, -o.LR, g)
}

// StepAll implements Optimizer.
func (o *SGD) StepAll(s *ParamSet) {
	for _, p := range s.List() {
		o.Step(p)
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2014), the optimizer used for
// every experiment in the paper.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	m, v map[string]*tensor.Matrix
	t    map[string]int
}

// NewAdam returns Adam with the usual defaults (β₁=0.9, β₂=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[string]*tensor.Matrix),
		v: make(map[string]*tensor.Matrix),
		t: make(map[string]int),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(p *Param) {
	if o.m == nil {
		o.m = make(map[string]*tensor.Matrix)
		o.v = make(map[string]*tensor.Matrix)
		o.t = make(map[string]int)
	}
	g := p.Grad
	if o.WeightDecay != 0 {
		g = g.Clone()
		tensor.AXPY(g, o.WeightDecay, p.W)
	}
	m, ok := o.m[p.Name]
	if !ok {
		m = tensor.New(p.W.Rows, p.W.Cols)
		o.m[p.Name] = m
		o.v[p.Name] = tensor.New(p.W.Rows, p.W.Cols)
	}
	v := o.v[p.Name]
	o.t[p.Name]++
	t := float64(o.t[p.Name])
	b1, b2 := o.Beta1, o.Beta2
	bc1 := 1 - math.Pow(b1, t)
	bc2 := 1 - math.Pow(b2, t)
	for i, gi := range g.Data {
		m.Data[i] = b1*m.Data[i] + (1-b1)*gi
		v.Data[i] = b2*v.Data[i] + (1-b2)*gi*gi
		mhat := m.Data[i] / bc1
		vhat := v.Data[i] / bc2
		p.W.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
	}
}

// StepAll implements Optimizer.
func (o *Adam) StepAll(s *ParamSet) {
	for _, p := range s.List() {
		o.Step(p)
	}
}
