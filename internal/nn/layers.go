package nn

import (
	"math"
	"math/rand"

	"agl/internal/tensor"
)

// Every layer's Forward/Backward takes a *tensor.Workspace as its first
// argument: all temporaries (outputs, cached activations, gradient
// scratch) are drawn from it and live until the workspace is Reset at the
// end of the step. A nil workspace is always valid and falls back to plain
// allocation, which is what one-shot callers (gradient checks, tests) use.

// Dense is a fully connected layer Y = X·W + b.
type Dense struct {
	W, B *Param

	x *tensor.Matrix // cached input for backward
}

// NewDense builds an in×out dense layer with Glorot-initialized weights.
// name prefixes the parameter names ("<name>/W", "<name>/b").
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		W: GlorotParam(name+"/W", in, out, rng),
		B: NewParam(name+"/b", 1, out),
	}
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward computes Y = X·W + b and caches X.
func (d *Dense) Forward(ws *tensor.Workspace, x *tensor.Matrix) *tensor.Matrix {
	d.x = x
	y := ws.GetUninit(x.Rows, d.W.W.Cols)
	tensor.MatMul(y, x, d.W.W)
	y.AddRowVector(d.B.W.Row(0))
	return y
}

// Backward accumulates dW, db and returns dX given dY.
func (d *Dense) Backward(ws *tensor.Workspace, dy *tensor.Matrix) *tensor.Matrix {
	// dW += Xᵀ·dY
	dw := ws.GetUninit(d.W.W.Rows, d.W.W.Cols)
	tensor.MatMulATB(dw, d.x, dy)
	tensor.AXPY(d.W.Grad, 1, dw)
	// db += colsum(dY)
	dy.ColSumsInto(d.B.Grad.Row(0))
	// dX = dY·Wᵀ
	dx := ws.GetUninit(dy.Rows, d.W.W.Rows)
	tensor.MatMulABT(dx, dy, d.W.W)
	return dx
}

// Activation is an elementwise nonlinearity with a hand-written derivative.
type Activation struct {
	Kind ActKind
	// LeakySlope is the negative-region slope for LeakyReLU (default 0.01 if
	// zero when Kind == ActLeakyReLU).
	LeakySlope float64

	x *tensor.Matrix
	y *tensor.Matrix
}

// ActKind selects an activation function.
type ActKind int

// Supported activations.
const (
	ActIdentity ActKind = iota
	ActReLU
	ActLeakyReLU
	ActTanh
	ActSigmoid
	ActELU
)

// String names the activation for logs and serialized models.
func (k ActKind) String() string {
	switch k {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	case ActLeakyReLU:
		return "leaky_relu"
	case ActTanh:
		return "tanh"
	case ActSigmoid:
		return "sigmoid"
	case ActELU:
		return "elu"
	}
	return "unknown"
}

// Forward applies the activation elementwise, caching what backward needs.
func (a *Activation) Forward(ws *tensor.Workspace, x *tensor.Matrix) *tensor.Matrix {
	a.x = x
	y := ws.Get(x.Rows, x.Cols)
	slope := a.LeakySlope
	if slope == 0 {
		slope = 0.01
	}
	for i, v := range x.Data {
		switch a.Kind {
		case ActIdentity:
			y.Data[i] = v
		case ActReLU:
			if v > 0 {
				y.Data[i] = v
			}
		case ActLeakyReLU:
			if v > 0 {
				y.Data[i] = v
			} else {
				y.Data[i] = slope * v
			}
		case ActTanh:
			y.Data[i] = math.Tanh(v)
		case ActSigmoid:
			y.Data[i] = 1 / (1 + math.Exp(-v))
		case ActELU:
			if v > 0 {
				y.Data[i] = v
			} else {
				y.Data[i] = math.Exp(v) - 1
			}
		}
	}
	a.y = y
	return y
}

// Backward returns dX = dY ⊙ f'(X).
func (a *Activation) Backward(ws *tensor.Workspace, dy *tensor.Matrix) *tensor.Matrix {
	dx := ws.Get(dy.Rows, dy.Cols)
	slope := a.LeakySlope
	if slope == 0 {
		slope = 0.01
	}
	for i, g := range dy.Data {
		switch a.Kind {
		case ActIdentity:
			dx.Data[i] = g
		case ActReLU:
			if a.x.Data[i] > 0 {
				dx.Data[i] = g
			}
		case ActLeakyReLU:
			if a.x.Data[i] > 0 {
				dx.Data[i] = g
			} else {
				dx.Data[i] = slope * g
			}
		case ActTanh:
			t := a.y.Data[i]
			dx.Data[i] = g * (1 - t*t)
		case ActSigmoid:
			s := a.y.Data[i]
			dx.Data[i] = g * s * (1 - s)
		case ActELU:
			if a.x.Data[i] > 0 {
				dx.Data[i] = g
			} else {
				dx.Data[i] = g * (a.y.Data[i] + 1)
			}
		}
	}
	return dx
}

// Dropout implements inverted dropout. In evaluation mode it is the
// identity.
type Dropout struct {
	Rate  float64
	Train bool
	Rng   *rand.Rand

	// mask is reused across Forward calls whenever the incoming shape
	// still fits its capacity; active reports whether the last Forward
	// actually dropped (mask stays allocated while inactive).
	mask   []float64
	active bool
}

// NewDropout builds a dropout layer with the given drop probability.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	return &Dropout{Rate: rate, Train: true, Rng: rng}
}

// Forward drops entries with probability Rate and rescales survivors.
func (d *Dropout) Forward(ws *tensor.Workspace, x *tensor.Matrix) *tensor.Matrix {
	if !d.Train || d.Rate <= 0 {
		d.active = false
		return x
	}
	keep := 1 - d.Rate
	y := ws.Get(x.Rows, x.Cols)
	n := len(x.Data)
	if cap(d.mask) >= n {
		d.mask = d.mask[:n]
		clear(d.mask)
	} else {
		d.mask = make([]float64, n)
	}
	d.active = true
	for i, v := range x.Data {
		if d.Rng.Float64() < keep {
			d.mask[i] = 1 / keep
			y.Data[i] = v / keep
		}
	}
	return y
}

// Backward applies the saved mask to the incoming gradient.
func (d *Dropout) Backward(ws *tensor.Workspace, dy *tensor.Matrix) *tensor.Matrix {
	if !d.active {
		return dy
	}
	dx := ws.Get(dy.Rows, dy.Cols)
	for i, g := range dy.Data {
		dx.Data[i] = g * d.mask[i]
	}
	return dx
}
