package nn

import (
	"math"

	"agl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of row-wise softmax
// over logits against integer class labels, returning the loss and the
// gradient w.r.t. logits. Rows with label < 0 are ignored (masked).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	return SoftmaxCrossEntropyWS(nil, logits, labels)
}

// SoftmaxCrossEntropyWS is SoftmaxCrossEntropy with the gradient and
// scratch drawn from a per-step workspace (nil allocates).
func SoftmaxCrossEntropyWS(ws *tensor.Workspace, logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	grad := ws.Get(logits.Rows, logits.Cols)
	var loss float64
	count := 0
	for i := 0; i < logits.Rows; i++ {
		if labels[i] < 0 {
			continue
		}
		count++
	}
	if count == 0 {
		return 0, grad
	}
	inv := 1 / float64(count)
	probs := ws.Floats(logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		y := labels[i]
		if y < 0 {
			continue
		}
		row := logits.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			probs[j] = math.Exp(v - maxv)
			sum += probs[j]
		}
		loss += -(row[y] - maxv - math.Log(sum)) * inv
		grow := grad.Row(i)
		for j := range probs {
			grow[j] = probs[j] / sum * inv
		}
		grow[y] -= inv
	}
	return loss, grad
}

// Softmax returns the row-wise softmax of logits.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			orow[j] = math.Exp(v - maxv)
			sum += orow[j]
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// SigmoidBCE computes the mean binary cross-entropy between elementwise
// sigmoid(logits) and 0/1 targets, returning the loss and the gradient
// w.r.t. logits. It supports multi-label targets (any number of columns)
// and uses the numerically stable log-sum-exp formulation.
func SigmoidBCE(logits, targets *tensor.Matrix) (float64, *tensor.Matrix) {
	return SigmoidBCEWS(nil, logits, targets)
}

// SigmoidBCEWS is SigmoidBCE with the gradient drawn from a per-step
// workspace (nil allocates).
func SigmoidBCEWS(ws *tensor.Workspace, logits, targets *tensor.Matrix) (float64, *tensor.Matrix) {
	if logits.Rows != targets.Rows || logits.Cols != targets.Cols {
		panic("nn: SigmoidBCE shape mismatch")
	}
	n := float64(len(logits.Data))
	if n == 0 {
		return 0, tensor.New(0, 0)
	}
	grad := ws.Get(logits.Rows, logits.Cols)
	var loss float64
	for i, z := range logits.Data {
		t := targets.Data[i]
		// loss = max(z,0) - z*t + log(1+exp(-|z|))
		l := math.Log1p(math.Exp(-math.Abs(z)))
		if z > 0 {
			l += z - z*t
		} else {
			l += -z * t
		}
		loss += l
		s := Sigmoid(z)
		grad.Data[i] = (s - t) / n
	}
	return loss / n, grad
}

// Sigmoid is the logistic function.
func Sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// SigmoidMatrix returns elementwise sigmoid(m).
func SigmoidMatrix(m *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = Sigmoid(v)
	}
	return out
}
