package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agl/internal/tensor"
)

func TestParamSetBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := GlorotParam("a", 2, 3, rng)
	b := NewParam("b", 1, 4)
	s := NewParamSet(a, b)
	if s.Len() != 2 || s.Get("a") != a || s.Get("missing") != nil {
		t.Fatal("ParamSet lookup broken")
	}
	if got := s.Names(); got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names order: %v", got)
	}
	if s.NumValues() != 6+4 {
		t.Fatalf("NumValues=%d", s.NumValues())
	}
	a.Grad.Fill(3)
	s.ZeroGrads()
	if a.Grad.Norm() != 0 {
		t.Fatal("ZeroGrads failed")
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewParamSet(NewParam("x", 1, 1), NewParam("x", 1, 1))
}

func TestParamSetCopyWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewParamSet(GlorotParam("w", 3, 3, rng))
	dst := NewParamSet(NewParam("w", 3, 3))
	if err := dst.CopyWeightsFrom(src); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equalish(dst.Get("w").W, src.Get("w").W, 0) {
		t.Fatal("weights not copied")
	}
	bad := NewParamSet(NewParam("other", 3, 3))
	if err := bad.CopyWeightsFrom(src); err == nil {
		t.Fatal("expected error for mismatched names")
	}
}

func TestDenseForwardBackwardGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense("d", 4, 3, rng)
	x := tensor.New(5, 4)
	x.RandFill(rng, 1)
	labels := []int{0, 1, 2, 0, 1}

	lossFn := func() float64 {
		y := d.Forward(nil, x)
		l, _ := SoftmaxCrossEntropy(y, labels)
		return l
	}
	y := d.Forward(nil, x)
	loss, dy := SoftmaxCrossEntropy(y, labels)
	if loss <= 0 {
		t.Fatalf("loss=%v", loss)
	}
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx := d.Backward(nil, dy)

	for _, p := range d.Params() {
		rel, err := GradCheck(p, lossFn, 1e-6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 1e-5 {
			t.Fatalf("param %s gradcheck rel error %v", p.Name, rel)
		}
	}
	rel, err := GradCheckInput(x, dx, lossFn, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-5 {
		t.Fatalf("input gradcheck rel error %v", rel)
	}
}

func TestActivationsGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kinds := []ActKind{ActIdentity, ActReLU, ActLeakyReLU, ActTanh, ActSigmoid, ActELU}
	for _, kind := range kinds {
		act := &Activation{Kind: kind}
		x := tensor.New(4, 3)
		x.RandFill(rng, 2)
		// Avoid kinks at exactly zero for ReLU-family finite differences.
		for i := range x.Data {
			if math.Abs(x.Data[i]) < 1e-3 {
				x.Data[i] = 0.1
			}
		}
		target := tensor.New(4, 3)
		for i := range target.Data {
			target.Data[i] = float64(i%2) * 0.5
		}
		lossFn := func() float64 {
			y := act.Forward(nil, x)
			l, _ := SigmoidBCE(y, target)
			return l
		}
		y := act.Forward(nil, x)
		_, dy := SigmoidBCE(y, target)
		dx := act.Backward(nil, dy)
		rel, err := GradCheckInput(x, dx, lossFn, 1e-6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 1e-4 {
			t.Fatalf("activation %v gradcheck rel error %v", kind, rel)
		}
	}
}

func TestActivationNames(t *testing.T) {
	if ActReLU.String() != "relu" || ActLeakyReLU.String() != "leaky_relu" || ActKind(99).String() != "unknown" {
		t.Fatal("activation names wrong")
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(0.5, rng)
	x := tensor.New(50, 40)
	x.Fill(1)
	y := d.Forward(nil, x)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatal("dropout did nothing")
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction %v far from 0.5", frac)
	}
	// Backward respects the mask.
	dy := tensor.New(50, 40)
	dy.Fill(1)
	dx := d.Backward(nil, dy)
	for i, v := range y.Data {
		if (v == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout mask not applied to gradient")
		}
	}
	// Eval mode is identity.
	d.Train = false
	if d.Forward(nil, x) != x {
		t.Fatal("eval-mode dropout should pass through")
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	logits := tensor.FromRows([][]float64{{0, 0}, {100, 0}})
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 0})
	// First row: -log(0.5); second: ~0.
	want := math.Log(2) / 2
	if math.Abs(loss-want) > 1e-9 {
		t.Fatalf("loss=%v want %v", loss, want)
	}
	if grad.At(0, 0) >= 0 || grad.At(0, 1) <= 0 {
		t.Fatalf("grad signs wrong: %v", grad)
	}
}

func TestSoftmaxCrossEntropyMasked(t *testing.T) {
	logits := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	lossAll, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
	lossMasked, gradMasked := SoftmaxCrossEntropy(logits, []int{0, -1})
	if lossMasked == lossAll {
		t.Fatal("mask had no effect")
	}
	if gradMasked.Row(1)[0] != 0 || gradMasked.Row(1)[1] != 0 {
		t.Fatal("masked row received gradient")
	}
	// All-masked returns zero.
	lz, gz := SoftmaxCrossEntropy(logits, []int{-1, -1})
	if lz != 0 || gz.Norm() != 0 {
		t.Fatal("all-masked loss should be zero")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := tensor.New(10, 7)
	m.RandFill(rng, 5)
	s := Softmax(m)
	for i := 0; i < s.Rows; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			sum += v
			if v < 0 {
				t.Fatal("negative probability")
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSigmoidBCEStableAtExtremes(t *testing.T) {
	logits := tensor.FromRows([][]float64{{1000, -1000}})
	targets := tensor.FromRows([][]float64{{1, 0}})
	loss, grad := SigmoidBCE(logits, targets)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct predictions should have ~0 loss: %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSigmoidBCEGradcheckViaDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense("d", 3, 2, rng)
	x := tensor.New(4, 3)
	x.RandFill(rng, 1)
	target := tensor.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {0, 0}})
	lossFn := func() float64 {
		l, _ := SigmoidBCE(d.Forward(nil, x), target)
		return l
	}
	_, dy := SigmoidBCE(d.Forward(nil, x), target)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	d.Backward(nil, dy)
	rel, _ := GradCheck(d.W, lossFn, 1e-6, 1)
	if rel > 1e-5 {
		t.Fatalf("BCE gradcheck rel error %v", rel)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.W.Data[0], p.W.Data[1] = 1, 2
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, -0.5
	o := NewSGD(0.1)
	o.Step(p)
	if math.Abs(p.W.Data[0]-0.95) > 1e-12 || math.Abs(p.W.Data[1]-2.05) > 1e-12 {
		t.Fatalf("SGD step wrong: %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.Grad.Data[0] = 1
	o := NewSGD(1)
	o.Momentum = 0.9
	o.Step(p)
	first := p.W.Data[0]
	o.Step(p)
	second := p.W.Data[0] - first
	if math.Abs(first-(-1)) > 1e-12 {
		t.Fatalf("first step %v", first)
	}
	if math.Abs(second-(-1.9)) > 1e-12 {
		t.Fatalf("second step delta %v want -1.9", second)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with Adam.
	p := NewParam("w", 1, 1)
	o := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.W.Data[0] - 3)
		o.Step(p)
	}
	if math.Abs(p.W.Data[0]-3) > 1e-3 {
		t.Fatalf("Adam did not converge: w=%v", p.W.Data[0])
	}
}

func TestAdamStatePerParam(t *testing.T) {
	a, b := NewParam("a", 1, 1), NewParam("b", 1, 1)
	o := NewAdam(0.1)
	a.Grad.Data[0] = 1
	o.Step(a)
	// b's first step must behave like t=1 (full bias correction), not t=2.
	b.Grad.Data[0] = 1
	o.Step(b)
	if math.Abs(a.W.Data[0]-b.W.Data[0]) > 1e-12 {
		t.Fatalf("per-param Adam state leaked: %v vs %v", a.W.Data[0], b.W.Data[0])
	}
}

func TestWeightDecayPullsTowardZero(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.W.Data[0] = 1
	o := NewSGD(0.1)
	o.WeightDecay = 0.5
	// zero task gradient: only decay acts
	o.Step(p)
	if p.W.Data[0] >= 1 {
		t.Fatal("weight decay did not shrink weight")
	}
}

// Property: softmax is invariant to constant row shifts.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := tensor.New(3, 5)
		m.RandFill(rng, 3)
		shifted := m.Clone()
		c := rng.NormFloat64() * 10
		for i := range shifted.Data {
			shifted.Data[i] += c
		}
		return tensor.Equalish(Softmax(m), Softmax(shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CE loss is non-negative and gradient rows sum to ~0.
func TestCrossEntropyGradientRowSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(5), 2+rng.Intn(5)
		m := tensor.New(rows, cols)
		m.RandFill(rng, 3)
		labels := make([]int, rows)
		for i := range labels {
			labels[i] = rng.Intn(cols)
		}
		loss, grad := SoftmaxCrossEntropy(m, labels)
		if loss < 0 {
			return false
		}
		for i := 0; i < rows; i++ {
			var sum float64
			for _, v := range grad.Row(i) {
				sum += v
			}
			if math.Abs(sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
