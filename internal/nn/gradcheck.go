package nn

import (
	"fmt"

	"agl/internal/tensor"
)

// GradCheck verifies an analytically computed gradient against central
// finite differences. lossFn must recompute the full forward pass and
// return the scalar loss; it is invoked with perturbed copies of the
// parameter's weights. The analytic gradient must already be accumulated in
// p.Grad. Returns the maximum relative error over sampled coordinates.
//
// A stride > 1 checks every stride-th coordinate, which keeps the O(n)
// forward passes affordable on larger parameters.
func GradCheck(p *Param, lossFn func() float64, eps float64, stride int) (float64, error) {
	if stride < 1 {
		stride = 1
	}
	var maxRel float64
	for i := 0; i < len(p.W.Data); i += stride {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		lp := lossFn()
		p.W.Data[i] = orig - eps
		lm := lossFn()
		p.W.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := p.Grad.Data[i]
		denom := absf(numeric) + absf(analytic)
		if denom < 1e-10 {
			continue
		}
		rel := absf(numeric-analytic) / denom
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel, nil
}

// GradCheckInput verifies a gradient w.r.t. an input matrix rather than a
// parameter. grad must hold the analytic gradient for x.
func GradCheckInput(x, grad *tensor.Matrix, lossFn func() float64, eps float64, stride int) (float64, error) {
	if x.Rows != grad.Rows || x.Cols != grad.Cols {
		return 0, fmt.Errorf("nn: GradCheckInput shape mismatch")
	}
	if stride < 1 {
		stride = 1
	}
	var maxRel float64
	for i := 0; i < len(x.Data); i += stride {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossFn()
		x.Data[i] = orig - eps
		lm := lossFn()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := grad.Data[i]
		denom := absf(numeric) + absf(analytic)
		if denom < 1e-10 {
			continue
		}
		rel := absf(numeric-analytic) / denom
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
