// Package clockx is the injectable time source shared by every
// timing-sensitive subsystem that wants deterministic tests: the
// consensus heartbeat/election timers and the serving tier's migration
// write-freeze TTL watchdog both take a Clock instead of calling the
// time package directly. Production code passes Real (zero cost beyond
// an interface call); tests pass a Fake and drive it with Advance, so a
// "10 second watchdog fired" assertion runs in microseconds and never
// flakes under load.
//
// The surface is deliberately the minimal subset those callers need —
// Now, Since, AfterFunc, NewTimer — not a full time-package mirror.
package clockx

import (
	"sort"
	"sync"
	"time"
)

// Timer is the stop-handle for a scheduled callback. Stop reports
// whether it prevented the callback from firing (mirrors
// time.Timer.Stop); Reset re-arms the timer for d from now, reporting
// whether it was still pending (mirrors time.Timer.Reset).
type Timer interface {
	Stop() bool
	Reset(d time.Duration) bool
}

// Clock abstracts the wall clock and callback scheduling.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	// AfterFunc schedules f to run on its own goroutine after d.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks the calling goroutine for d (a Fake clock wakes it
	// when Advance crosses the deadline).
	Sleep(d time.Duration)
}

// Real is the production clock: thin forwarding to the time package.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Since returns time.Since(t).
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// AfterFunc forwards to time.AfterFunc.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Sleep forwards to time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Fake is a manually advanced clock for deterministic tests. Time only
// moves when Advance is called; timers due at or before the new time
// fire synchronously (on the Advance goroutine, outside the clock lock,
// in deadline order), so a test can Advance past a watchdog TTL and
// immediately assert its effect without sleeping.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    int
	timers []*fakeTimer
	wake   chan struct{} // closed+replaced on every Advance (Sleep wakeups)
}

// NewFake returns a Fake clock starting at an arbitrary fixed epoch.
func NewFake() *Fake {
	return &Fake{
		now:  time.Date(2020, 8, 31, 0, 0, 0, 0, time.UTC), // VLDB'20 day one
		wake: make(chan struct{}),
	}
}

// Now returns the current fake time.
func (c *Fake) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the fake duration elapsed since t.
func (c *Fake) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// AfterFunc schedules f at now+d. A non-positive d fires on the next
// Advance call (not immediately), keeping test ordering explicit.
func (c *Fake) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	t := &fakeTimer{c: c, seq: c.seq, when: c.now.Add(d), f: f, armed: true}
	c.timers = append(c.timers, t)
	return t
}

// Sleep blocks until Advance moves the clock to or past now+d.
func (c *Fake) Sleep(d time.Duration) {
	c.mu.Lock()
	deadline := c.now.Add(d)
	for c.now.Before(deadline) {
		wake := c.wake
		c.mu.Unlock()
		<-wake
		c.mu.Lock()
	}
	c.mu.Unlock()
}

// Advance moves the clock forward by d and fires every armed timer
// whose deadline falls in the crossed window, in deadline order
// (creation order breaks ties). Callbacks run synchronously on the
// caller's goroutine without the clock lock held, so they may schedule
// new timers; a new timer due within the already-crossed window fires
// during this same Advance.
func (c *Fake) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		t := c.nextDueLocked(target)
		if t == nil {
			break
		}
		// Step time to the timer's deadline before firing so the
		// callback observes a causally consistent Now().
		if t.when.After(c.now) {
			c.now = t.when
		}
		t.armed = false
		f := t.f
		c.mu.Unlock()
		f()
		c.mu.Lock()
	}
	c.now = target
	close(c.wake)
	c.wake = make(chan struct{})
	c.mu.Unlock()
}

// nextDueLocked returns the earliest armed timer due at or before
// target, or nil.
func (c *Fake) nextDueLocked(target time.Time) *fakeTimer {
	live := c.timers[:0]
	for _, t := range c.timers {
		if t.armed {
			live = append(live, t)
		}
	}
	c.timers = live
	sort.SliceStable(c.timers, func(i, j int) bool {
		if !c.timers[i].when.Equal(c.timers[j].when) {
			return c.timers[i].when.Before(c.timers[j].when)
		}
		return c.timers[i].seq < c.timers[j].seq
	})
	if len(c.timers) == 0 || c.timers[0].when.After(target) {
		return nil
	}
	return c.timers[0]
}

type fakeTimer struct {
	c     *Fake
	seq   int
	when  time.Time
	f     func()
	armed bool
}

// Stop disarms the timer, reporting whether it was still pending.
func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.armed
	t.armed = false
	return was
}

// Reset re-arms the timer for d from the current fake time, reporting
// whether it was still pending.
func (t *fakeTimer) Reset(d time.Duration) bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.armed
	t.when = t.c.now.Add(d)
	t.armed = true
	if !was {
		// A fired timer re-armed: make sure it is back in the queue.
		for _, q := range t.c.timers {
			if q == t {
				return was
			}
		}
		t.c.timers = append(t.c.timers, t)
	}
	return was
}
