package clockx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeAdvanceFiresInOrder(t *testing.T) {
	c := NewFake()
	var mu sync.Mutex
	var order []int
	c.AfterFunc(3*time.Second, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	c.AfterFunc(1*time.Second, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	c.AfterFunc(2*time.Second, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })

	c.Advance(1500 * time.Millisecond)
	mu.Lock()
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after 1.5s: fired %v, want [1]", order)
	}
	mu.Unlock()

	c.Advance(10 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", order)
	}
}

func TestFakeStopPreventsFire(t *testing.T) {
	c := NewFake()
	var fired atomic.Bool
	tm := c.AfterFunc(time.Second, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	c.Advance(5 * time.Second)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestFakeResetReArms(t *testing.T) {
	c := NewFake()
	var n atomic.Int32
	tm := c.AfterFunc(time.Second, func() { n.Add(1) })
	c.Advance(2 * time.Second)
	if n.Load() != 1 {
		t.Fatalf("fired %d times, want 1", n.Load())
	}
	if tm.Reset(time.Second) {
		t.Fatal("Reset on fired timer should report false")
	}
	c.Advance(2 * time.Second)
	if n.Load() != 2 {
		t.Fatalf("after reset fired %d times, want 2", n.Load())
	}
	// Reset while pending pushes the deadline out.
	tm.Reset(10 * time.Second)
	c.Advance(5 * time.Second)
	if n.Load() != 2 {
		t.Fatal("timer fired before pushed-out deadline")
	}
	c.Advance(6 * time.Second)
	if n.Load() != 3 {
		t.Fatalf("after deadline fired %d times, want 3", n.Load())
	}
}

func TestFakeCallbackSchedulesWithinWindow(t *testing.T) {
	c := NewFake()
	var hits []time.Time
	c.AfterFunc(time.Second, func() {
		hits = append(hits, c.Now())
		c.AfterFunc(time.Second, func() { hits = append(hits, c.Now()) })
	})
	c.Advance(5 * time.Second)
	if len(hits) != 2 {
		t.Fatalf("chained timer fired %d times in window, want 2", len(hits))
	}
	if got := hits[1].Sub(hits[0]); got != time.Second {
		t.Fatalf("chained deadline gap %v, want 1s", got)
	}
}

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	c := NewFake()
	done := make(chan struct{})
	go func() {
		c.Sleep(3 * time.Second)
		close(done)
	}()
	// Give the sleeper a moment to park, then advance past its deadline.
	time.Sleep(10 * time.Millisecond)
	c.Advance(time.Second)
	select {
	case <-done:
		t.Fatal("Sleep returned before deadline")
	case <-time.After(20 * time.Millisecond):
	}
	c.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake after Advance crossed deadline")
	}
}

func TestRealClockSmoke(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	var fired atomic.Bool
	tm := c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	defer tm.Stop()
	deadline := time.Now().Add(time.Second)
	for !fired.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fired.Load() {
		t.Fatal("real AfterFunc never fired")
	}
	if c.Since(t0) <= 0 {
		t.Fatal("Since went backwards")
	}
}
