// Package e2e drives the built command-line binaries end to end: the
// GraphFlat → GraphTrainer → GraphInfer workflow of the paper's Figure 6
// plus the aglserve online tier, exercised exactly as an operator would
// run them.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"agl/internal/datagen"
	"agl/internal/gnn"
	"agl/internal/graph"
	"agl/internal/nn"
	"agl/internal/serve"
)

// buildCmds compiles the offline-pipeline CLIs into dir.
func buildCmds(t *testing.T, dir string) map[string]string {
	return buildSome(t, dir, "graphflat", "graphtrainer", "graphinfer", "aglserve")
}

// buildSome compiles the named CLIs into dir.
func buildSome(t *testing.T, dir string, names ...string) map[string]string {
	t.Helper()
	bins := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "agl/cmd/"+name)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/e2e -> repo root
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

func TestCLIPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildCmds(t, dir)

	// Materialize a small UUG-like dataset as TSV tables.
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 400, FeatDim: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nodePath := filepath.Join(dir, "nodes.tsv")
	edgePath := filepath.Join(dir, "edges.tsv")
	nf, err := os.Create(nodePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteNodeTable(nf, ds.G.Nodes); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	ef, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeTable(ef, ds.G.Edges); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	var targets strings.Builder
	for _, id := range ds.Train {
		fmt.Fprintf(&targets, "%d\t%d\n", id, ds.LabelOf(id))
	}
	targetPath := filepath.Join(dir, "targets.tsv")
	if err := os.WriteFile(targetPath, []byte(targets.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Step 1: GraphFlat.
	features := filepath.Join(dir, "features")
	out := run(t, bins["graphflat"],
		"-n", nodePath, "-e", edgePath, "-t", targetPath,
		"-hops", "2", "-s", "weighted", "-max-neighbors", "10",
		"-seed", "3", "-o", features)
	if !strings.Contains(out, "GraphFeature records") {
		t.Fatalf("graphflat output: %s", out)
	}

	// Step 2: GraphTrainer.
	modelPath := filepath.Join(dir, "model.agl")
	out = run(t, bins["graphtrainer"],
		"-m", "gat", "-i", features, "-loss", "bce", "-metric", "auc",
		"-hidden", "8", "-classes", "1", "-layers", "2",
		"-epochs", "4", "-batch", "32", "-workers", "2",
		"-t", "pipeline,pruning,partition", "-o", modelPath)
	if !strings.Contains(out, "model saved") {
		t.Fatalf("graphtrainer output: %s", out)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatal("model file missing")
	}

	// Step 3: GraphInfer.
	scoresPath := filepath.Join(dir, "scores.tsv")
	out = run(t, bins["graphinfer"],
		"-m", modelPath, "-n", nodePath, "-e", edgePath,
		"-s", "weighted", "-max-neighbors", "10", "-seed", "3",
		"-o", scoresPath)
	if !strings.Contains(out, "scored 400 nodes") {
		t.Fatalf("graphinfer output: %s", out)
	}

	// Scores must cover every node with probabilities in [0, 1].
	data, err := os.ReadFile(scoresPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 400 {
		t.Fatalf("scored %d nodes, want 400", len(lines))
	}
	for _, line := range lines {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("malformed score line %q", line)
		}
		s, err := strconv.ParseFloat(strings.Split(parts[1], ",")[0], 64)
		if err != nil || s < 0 || s > 1 {
			t.Fatalf("bad score %q: %v", line, err)
		}
	}

	// Step 4: aglserve — the online tier over the same artifacts. Scores
	// served over HTTP must match GraphInfer's TSV output.
	wantScores := map[string]float64{}
	for _, line := range lines {
		parts := strings.Split(line, "\t")
		v, _ := strconv.ParseFloat(strings.Split(parts[1], ",")[0], 64)
		wantScores[parts[0]] = v
	}
	addr := freeAddr(t)
	serveCmd := exec.Command(bins["aglserve"],
		"-m", modelPath, "-n", nodePath, "-e", edgePath,
		"-s", "weighted", "-max-neighbors", "10", "-seed", "3",
		"-addr", addr)
	var serveOut bytes.Buffer
	serveCmd.Stdout = &serveOut
	serveCmd.Stderr = &serveOut
	if err := serveCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serveCmd.Process.Kill()
		serveCmd.Wait()
	}()
	waitHealthy(t, addr, &serveOut)

	var single struct {
		Node   int64     `json:"node"`
		Scores []float64 `json:"scores"`
	}
	getJSON(t, "http://"+addr+"/score?node="+strconv.FormatInt(ds.G.Nodes[0].ID, 10), &single)
	want := wantScores[strconv.FormatInt(ds.G.Nodes[0].ID, 10)]
	if len(single.Scores) != 1 || abs(single.Scores[0]-want) > 1e-6 {
		t.Fatalf("served score %v, GraphInfer TSV has %v", single.Scores, want)
	}

	ids := []int64{ds.G.Nodes[1].ID, ds.G.Nodes[2].ID, ds.G.Nodes[3].ID}
	body, _ := json.Marshal(map[string][]int64{"nodes": ids})
	resp, err := http.Post("http://"+addr+"/scores", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := bodyText(resp)
		t.Fatalf("POST /scores: status %d: %s", resp.StatusCode, msg)
	}
	var bulk struct {
		Scores map[string][]float64 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bulk); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bulk.Scores) != len(ids) {
		t.Fatalf("bulk returned %d scores, want %d", len(bulk.Scores), len(ids))
	}
	for _, id := range ids {
		key := strconv.FormatInt(id, 10)
		if abs(bulk.Scores[key][0]-wantScores[key]) > 1e-6 {
			t.Fatalf("node %s: served %v, GraphInfer TSV has %v", key, bulk.Scores[key][0], wantScores[key])
		}
	}

	var stats struct {
		Requests int64
		Warm     int64
	}
	getJSON(t, "http://"+addr+"/stats", &stats)
	if stats.Requests != 4 || stats.Warm != 4 {
		t.Fatalf("stats after 4 precomputed-node requests: %+v\nserver log:\n%s", stats, serveOut.String())
	}

	// Unknown node -> client error, not a crash.
	r, err := http.Get("http://" + addr + "/score?node=999999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node returned %d", r.StatusCode)
	}

	// Step 5: POST /update — stream mutations into the serving graph.
	// Single-mutation form: a feature update must invalidate the node.
	target := ds.G.Nodes[0].ID
	feat := make([]string, ds.G.FeatureDim())
	for i := range feat {
		feat[i] = "0.5"
	}
	updBody := fmt.Sprintf(`{"op":"update_feat","id":%d,"feat":[%s]}`,
		target, strings.Join(feat, ","))
	var upd struct {
		Version     uint64            `json:"version"`
		Applied     int               `json:"applied"`
		Invalidated int               `json:"invalidated"`
		Errors      map[string]string `json:"errors"`
	}
	postJSON(t, "http://"+addr+"/update", updBody, http.StatusOK, &upd)
	if upd.Version != 1 || upd.Applied != 1 || upd.Invalidated == 0 || len(upd.Errors) != 0 {
		t.Fatalf("single update response %+v", upd)
	}

	// The mutated node must rescore (different features -> different
	// score) while an untouched far-away node stays bit-identical.
	var rescored struct {
		Scores []float64 `json:"scores"`
	}
	getJSON(t, "http://"+addr+"/score?node="+strconv.FormatInt(target, 10), &rescored)
	if abs(rescored.Scores[0]-wantScores[strconv.FormatInt(target, 10)]) < 1e-12 {
		t.Fatalf("score unchanged after feature update: %v", rescored.Scores)
	}

	// Batch form with partial failure: valid mutations land, invalid ones
	// report positionally, the response is still 200.
	a, b := ds.G.Nodes[4].ID, ds.G.Nodes[5].ID
	batchBody := fmt.Sprintf(`{"mutations":[
		{"op":"add_edge","src":%d,"dst":%d,"weight":2},
		{"op":"add_edge","src":%d,"dst":999999999}
	]}`, a, b, a)
	postJSON(t, "http://"+addr+"/update", batchBody, http.StatusOK, &upd)
	if upd.Version != 2 || upd.Applied != 1 || upd.Errors["1"] == "" {
		t.Fatalf("partial-failure update response %+v", upd)
	}

	// All-failed batch -> error status, version frozen.
	resp, err = http.Post("http://"+addr+"/update", "application/json",
		strings.NewReader(`{"op":"add_edge","src":999999998,"dst":999999999}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("all-failed update returned %d", resp.StatusCode)
	}

	var mstats struct {
		Version   uint64
		Mutations int64
		DirtyRows int64
	}
	getJSON(t, "http://"+addr+"/stats", &mstats)
	if mstats.Version != 2 || mstats.Mutations != 2 {
		t.Fatalf("mutation accounting after updates: %+v", mstats)
	}

	// A structurally malformed batch element (unknown op) must not reject
	// its valid sibling: per-element decoding reports it positionally.
	batchBody = fmt.Sprintf(`{"mutations":[
		{"op":"add_edge","src":%d,"dst":%d,"weight":1},
		{"op":"no_such_op"}
	]}`, b, a)
	postJSON(t, "http://"+addr+"/update", batchBody, http.StatusOK, &upd)
	if upd.Version != 3 || upd.Applied != 1 || upd.Errors["1"] == "" {
		t.Fatalf("malformed-element batch response %+v", upd)
	}

	// The catch-up feed replays every applied batch by version.
	var feed struct {
		Version uint64 `json:"version"`
		Entries []struct {
			Version uint64           `json:"version"`
			Muts    []map[string]any `json:"muts"`
		} `json:"entries"`
	}
	getJSON(t, "http://"+addr+"/mutations?since=0", &feed)
	if feed.Version != 3 || len(feed.Entries) != 3 {
		t.Fatalf("mutation feed %+v", feed)
	}
	if feed.Entries[2].Version != 3 || len(feed.Entries[2].Muts) != 1 ||
		feed.Entries[2].Muts[0]["op"] != "add_edge" {
		t.Fatalf("feed entry 3: %+v", feed.Entries[2])
	}
	getJSON(t, "http://"+addr+"/mutations?since=3", &feed)
	if len(feed.Entries) != 0 {
		t.Fatalf("caught-up feed should be empty: %+v", feed)
	}
}

// postJSON posts a JSON body, asserts the status, and decodes the response.
func postJSON(t *testing.T, url, body string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := bodyText(resp)
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
}

// bodyText drains a response body for an error message.
func bodyText(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.String(), err
}

// getJSON fetches url and decodes the JSON response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// freeAddr grabs an ephemeral localhost port for the server to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /healthz until the server is up (it precomputes the
// embedding store via GraphInfer at boot).
func waitHealthy(t *testing.T, addr string, log *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("aglserve never became healthy; log:\n%s", log.String())
}

// TestCLILinkPipelineEndToEnd drives the edge-level workload through the
// binaries: pair targets -> graphflat -p -> graphtrainer -edge-head ->
// aglserve GET /link (warm, cold after a streamed mutation, 404/400).
func TestCLILinkPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildCmds(t, dir)

	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 300, FeatDim: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nodePath := filepath.Join(dir, "nodes.tsv")
	edgePath := filepath.Join(dir, "edges.tsv")
	nf, err := os.Create(nodePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteNodeTable(nf, ds.G.Nodes); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	ef, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeTable(ef, ds.G.Edges); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	var pairs strings.Builder
	for i, e := range ds.G.Edges {
		if i%4 != 0 || i/4 >= 200 {
			continue
		}
		fmt.Fprintf(&pairs, "%d\t%d\t1\n", e.Src, e.Dst)
	}
	pairPath := filepath.Join(dir, "pairs.tsv")
	if err := os.WriteFile(pairPath, []byte(pairs.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	feats := filepath.Join(dir, "linkfeats")
	out := run(t, bins["graphflat"],
		"-n", nodePath, "-e", edgePath, "-p", pairPath,
		"-hops", "2", "-s", "weighted", "-max-neighbors", "10",
		"-seed", "3", "-o", feats)
	if !strings.Contains(out, "LinkRecord records") {
		t.Fatalf("graphflat -p output: %s", out)
	}

	modelPath := filepath.Join(dir, "linkmodel.agl")
	out = run(t, bins["graphtrainer"],
		"-i", feats, "-m", "gcn", "-edge-head", "bilinear",
		"-loss", "bce", "-metric", "auc", "-hidden", "8", "-classes", "1",
		"-layers", "2", "-epochs", "3", "-batch", "32", "-lr", "0.05",
		"-neg-ratio", "2", "-o", modelPath)
	if !strings.Contains(out, "model saved") {
		t.Fatalf("graphtrainer -edge-head output: %s", out)
	}

	addr := freeAddr(t)
	serveCmd := exec.Command(bins["aglserve"],
		"-m", modelPath, "-n", nodePath, "-e", edgePath,
		"-s", "weighted", "-max-neighbors", "10", "-seed", "3",
		"-addr", addr)
	var serveOut bytes.Buffer
	serveCmd.Stdout = &serveOut
	serveCmd.Stderr = &serveOut
	if err := serveCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serveCmd.Process.Kill()
		serveCmd.Wait()
	}()
	waitHealthy(t, addr, &serveOut)

	src := ds.G.Edges[0].Src
	dst := ds.G.Edges[0].Dst
	var link struct {
		Src   int64   `json:"src"`
		Dst   int64   `json:"dst"`
		Logit float64 `json:"logit"`
		Score float64 `json:"score"`
	}
	getJSON(t, fmt.Sprintf("http://%s/link?src=%d&dst=%d", addr, src, dst), &link)
	if link.Score < 0 || link.Score > 1 {
		t.Fatalf("warm /link score out of range: %+v", link)
	}

	// Stream in a new node; its pair score must resolve cold.
	var upd struct {
		Applied int `json:"applied"`
	}
	postJSON(t, "http://"+addr+"/update", fmt.Sprintf(
		`{"mutations":[{"op":"add_node","id":424242,"feat":[1,1,1,1,1,1,1,1]},{"op":"add_edge","src":424242,"dst":%d,"weight":2}]}`, dst),
		http.StatusOK, &upd)
	if upd.Applied != 2 {
		t.Fatalf("update applied %d, want 2", upd.Applied)
	}
	getJSON(t, fmt.Sprintf("http://%s/link?src=424242&dst=%d", addr, dst), &link)
	if link.Score < 0 || link.Score > 1 {
		t.Fatalf("cold /link score out of range: %+v", link)
	}
	var stats struct {
		LinkRequests, LinkWarm, LinkCold int64
	}
	getJSON(t, "http://"+addr+"/stats", &stats)
	if stats.LinkWarm != 1 || stats.LinkCold != 1 {
		t.Fatalf("link path accounting: %+v", stats)
	}

	// Unknown endpoint -> 404; missing parameter -> 400.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{fmt.Sprintf("http://%s/link?src=999999999&dst=%d", addr, dst), http.StatusNotFound},
		{fmt.Sprintf("http://%s/link?src=%d", addr, src), http.StatusBadRequest},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s: status %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

// errEnvelope is the stable JSON error shape every aglserve endpoint
// emits: {"error":{"code":"...","message":"..."}}.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// getEnvelope fetches url and decodes the error envelope, returning the
// raw response for header/status assertions.
func getEnvelope(t *testing.T, url string) (*http.Response, errEnvelope) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("GET %s: decode envelope: %v", url, err)
	}
	return resp, env
}

// TestCLIServeOverloadEndToEnd drives aglserve's production-hardening
// surface over real HTTP: admission control answering with the
// machine-readable 429 envelope + Retry-After, the server-wide -deadline
// expiring a request as the 408 envelope, the 400 envelope for malformed
// parameters, the live GET /metrics ring snapshot, and the post-mortem
// flight-recorder file read back with aglmetrics.
//
// Saturation is deterministic, not a timing race: with -shed 1 a single
// admitted cold request lingers in the micro-batcher for -max-wait
// waiting for companions admission control can never let in, holding the
// only admission slot while the probes arrive.
func TestCLIServeOverloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildSome(t, dir, "aglserve", "aglmetrics")

	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 200, FeatDim: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	nodePath := filepath.Join(dir, "nodes.tsv")
	edgePath := filepath.Join(dir, "edges.tsv")
	nf, err := os.Create(nodePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteNodeTable(nf, ds.G.Nodes); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	ef, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeTable(ef, ds.G.Edges); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	// An untrained model is enough: this test exercises the serving
	// control plane, not score quality.
	model, err := gnn.NewModel(gnn.Config{
		Kind: gnn.KindGCN, InDim: 8, Hidden: 8, Classes: 1, Layers: 2,
		Act: nn.ActTanh, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := gnn.MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.agl")
	if err := os.WriteFile(modelPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	flightPath := filepath.Join(dir, "flight.aglfr")
	addr := freeAddr(t)
	serveCmd := exec.Command(bins["aglserve"],
		"-m", modelPath, "-n", nodePath, "-e", edgePath,
		"-seed", "3", "-precompute=false",
		"-max-batch", "2", "-max-wait", "5s", "-queue", "1", "-shed", "1",
		"-deadline", "500ms", "-cache", "8",
		"-flight", flightPath, "-flight-interval", "100ms",
		"-addr", addr)
	var serveOut bytes.Buffer
	serveCmd.Stdout = &serveOut
	serveCmd.Stderr = &serveOut
	if err := serveCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serveCmd.Process.Kill()
		serveCmd.Wait()
	}()
	waitHealthy(t, addr, &serveOut)

	// The hold: one cold request admits, then lingers in the batcher.
	holdURL := fmt.Sprintf("http://%s/score?node=%d", addr, ds.G.Nodes[0].ID)
	type holdResult struct {
		resp *http.Response
		env  errEnvelope
	}
	holdCh := make(chan holdResult, 1)
	go func() {
		resp, err := http.Get(holdURL)
		if err != nil {
			holdCh <- holdResult{}
			return
		}
		defer resp.Body.Close()
		var env errEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		holdCh <- holdResult{resp, env}
	}()

	// Wait until the hold owns the admission slot (ColdPending gauge).
	var pending struct{ ColdPending int64 }
	holdDeadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, "http://"+addr+"/stats", &pending)
		if pending.ColdPending >= 1 {
			break
		}
		if time.Now().After(holdDeadline) {
			t.Fatalf("hold request never admitted; server log:\n%s", serveOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Probe: admission control must shed with the full 429 contract.
	probeURL := fmt.Sprintf("http://%s/score?node=%d", addr, ds.G.Nodes[1].ID)
	resp, env := getEnvelope(t, probeURL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe during saturation: status %d, want 429", resp.StatusCode)
	}
	if env.Error.Code != "overloaded" || env.Error.Message == "" {
		t.Fatalf("shed envelope %+v", env)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After header")
	}

	// The held request must expire at the server-wide 500ms deadline and
	// come back as the 408 envelope — never as a success served late.
	hold := <-holdCh
	if hold.resp == nil {
		t.Fatal("hold request failed at transport level")
	}
	if hold.resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("held request: status %d, want 408", hold.resp.StatusCode)
	}
	if hold.env.Error.Code != "deadline_exceeded" {
		t.Fatalf("held request envelope %+v", hold.env)
	}

	// Malformed parameter: same envelope shape, stable code.
	resp, env = getEnvelope(t, "http://"+addr+"/score?node=notanumber")
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "bad_request" {
		t.Fatalf("bad parameter: status %d, envelope %+v", resp.StatusCode, env)
	}

	// Live ring snapshot: the shed and the expiry must show up in the
	// per-interval samples once the next tick lands.
	time.Sleep(250 * time.Millisecond)
	var metrics struct {
		IntervalMs int64                `json:"interval_ms"`
		Slots      int                  `json:"slots"`
		Path       string               `json:"path"`
		Samples    []serve.FlightSample `json:"samples"`
	}
	getJSON(t, "http://"+addr+"/metrics?last=100", &metrics)
	if metrics.IntervalMs != 100 || metrics.Path != flightPath {
		t.Fatalf("metrics spec: %+v", metrics)
	}
	var liveShed uint64
	for _, s := range metrics.Samples {
		liveShed += uint64(s.Shed)
	}
	if len(metrics.Samples) == 0 || liveShed == 0 {
		t.Fatalf("live ring: %d samples, %d shed — recorder missed the overload",
			len(metrics.Samples), liveShed)
	}

	// Post-mortem: kill the server hard (no graceful close) and read the
	// flight file with aglmetrics — incident forensics must not depend on
	// a clean shutdown.
	serveCmd.Process.Kill()
	serveCmd.Wait()
	dump := run(t, bins["aglmetrics"], "-i", flightPath)
	if !strings.Contains(dump, "totals:") {
		t.Fatalf("aglmetrics table output:\n%s", dump)
	}
	jsonDump := run(t, bins["aglmetrics"], "-i", flightPath, "-json")
	var fileShed uint64
	for _, line := range strings.Split(strings.TrimSpace(jsonDump), "\n") {
		var s serve.FlightSample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("aglmetrics -json line %q: %v", line, err)
		}
		fileShed += uint64(s.Shed)
	}
	if fileShed == 0 {
		t.Fatal("flight file recorded no shed samples")
	}
}
