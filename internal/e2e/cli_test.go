// Package e2e drives the built command-line binaries end to end: the
// GraphFlat → GraphTrainer → GraphInfer workflow of the paper's Figure 6,
// exercised exactly as an operator would run it.
package e2e

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"agl/internal/datagen"
	"agl/internal/graph"
)

// buildCmds compiles the three CLIs into dir.
func buildCmds(t *testing.T, dir string) map[string]string {
	t.Helper()
	bins := map[string]string{}
	for _, name := range []string{"graphflat", "graphtrainer", "graphinfer"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "agl/cmd/"+name)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/e2e -> repo root
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

func TestCLIPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := buildCmds(t, dir)

	// Materialize a small UUG-like dataset as TSV tables.
	ds, err := datagen.UUG(datagen.UUGConfig{Nodes: 400, FeatDim: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nodePath := filepath.Join(dir, "nodes.tsv")
	edgePath := filepath.Join(dir, "edges.tsv")
	nf, err := os.Create(nodePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteNodeTable(nf, ds.G.Nodes); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	ef, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeTable(ef, ds.G.Edges); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	var targets strings.Builder
	for _, id := range ds.Train {
		fmt.Fprintf(&targets, "%d\t%d\n", id, ds.LabelOf(id))
	}
	targetPath := filepath.Join(dir, "targets.tsv")
	if err := os.WriteFile(targetPath, []byte(targets.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Step 1: GraphFlat.
	features := filepath.Join(dir, "features")
	out := run(t, bins["graphflat"],
		"-n", nodePath, "-e", edgePath, "-t", targetPath,
		"-hops", "2", "-s", "weighted", "-max-neighbors", "10",
		"-seed", "3", "-o", features)
	if !strings.Contains(out, "GraphFeature records") {
		t.Fatalf("graphflat output: %s", out)
	}

	// Step 2: GraphTrainer.
	modelPath := filepath.Join(dir, "model.agl")
	out = run(t, bins["graphtrainer"],
		"-m", "gat", "-i", features, "-loss", "bce", "-metric", "auc",
		"-hidden", "8", "-classes", "1", "-layers", "2",
		"-epochs", "4", "-batch", "32", "-workers", "2",
		"-t", "pipeline,pruning,partition", "-o", modelPath)
	if !strings.Contains(out, "model saved") {
		t.Fatalf("graphtrainer output: %s", out)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatal("model file missing")
	}

	// Step 3: GraphInfer.
	scoresPath := filepath.Join(dir, "scores.tsv")
	out = run(t, bins["graphinfer"],
		"-m", modelPath, "-n", nodePath, "-e", edgePath,
		"-s", "weighted", "-max-neighbors", "10", "-seed", "3",
		"-o", scoresPath)
	if !strings.Contains(out, "scored 400 nodes") {
		t.Fatalf("graphinfer output: %s", out)
	}

	// Scores must cover every node with probabilities in [0, 1].
	data, err := os.ReadFile(scoresPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 400 {
		t.Fatalf("scored %d nodes, want 400", len(lines))
	}
	for _, line := range lines {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("malformed score line %q", line)
		}
		s, err := strconv.ParseFloat(strings.Split(parts[1], ",")[0], 64)
		if err != nil || s < 0 || s > 1 {
			t.Fatalf("bad score %q: %v", line, err)
		}
	}
}
